// P-CSI: Preconditioned Classical Stiefel Iteration (paper Algorithm 2,
// §3; the unpreconditioned CSI is from Hu et al., Euro-Par 2013 [20]).
//
// A Chebyshev-type iteration over the eigenvalue interval [nu, mu] of the
// preconditioned operator M^-1 A. Its defining property is that the
// iteration itself needs NO global reduction — only the periodic
// convergence check does — which is what flattens the solver's scaling
// curve at large core counts (paper Eq. 3 and Figs. 8/10/11).
#pragma once

#include <memory>

#include "src/solver/iterative_solver.hpp"

namespace minipop::solver {

class CommAvoidEngine;

/// Estimated extreme eigenvalues of M^-1 A (from Lanczos; see
/// lanczos.hpp).
struct EigenBounds {
  double nu = 0.0;  ///< smallest eigenvalue estimate
  double mu = 0.0;  ///< largest eigenvalue estimate
};

class PcsiSolver final : public IterativeSolver {
 public:
  PcsiSolver(EigenBounds bounds, const SolverOptions& options = {});

  SolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m, const comm::DistField& b,
      comm::DistField& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  std::string name() const override { return "pcsi"; }

  const EigenBounds& bounds() const { return bounds_; }
  void set_bounds(EigenBounds bounds);

 public:
  ~PcsiSolver() override;

 private:
  /// Split-phase path (SolverOptions::overlap): overlapped halo sweeps
  /// plus the check-norm reduction hidden behind a speculative
  /// preconditioner apply. Bitwise identical to the blocking path.
  SolveStats solve_overlapped(comm::Communicator& comm,
                              const comm::HaloExchanger& halo,
                              const DistOperator& a, Preconditioner& m,
                              const comm::DistField& b, comm::DistField& x,
                              comm::HaloFreshness x_fresh);

  /// Communication-avoiding path (SolverOptions::halo_depth > 1 with a
  /// pointwise preconditioner): ONE depth-k ghost exchange of
  /// {x, dx, r} per group of up to k iterations, the sweeps running on
  /// shrinking extended domains. Iterates, residuals and iteration
  /// counts are bitwise identical to the depth-1 path; only the
  /// exchange count (and the redundant ghost flops) differ. Takes
  /// precedence over `overlap` — the grouped exchange already removes
  /// the latency the split-phase path merely hides.
  SolveStats solve_comm_avoid(comm::Communicator& comm,
                              const comm::HaloExchanger& halo,
                              const DistOperator& a, Preconditioner& m,
                              const comm::DistField& b, comm::DistField& x,
                              comm::HaloFreshness x_fresh);

  EigenBounds bounds_;
  SolverOptions opt_;
  /// Cached ghost-zone engine, rebuilt when the operator or resolved
  /// depth changes (extended planes are pure functions of both).
  std::unique_ptr<CommAvoidEngine> ca_engine_;
  const DistOperator* ca_engine_op_ = nullptr;
};

}  // namespace minipop::solver
