#include "src/solver/field_ops.hpp"

#include "src/util/error.hpp"

namespace minipop::solver {

namespace {
std::uint64_t interior_points(const comm::DistField& f) {
  std::uint64_t n = 0;
  for (int lb = 0; lb < f.num_local_blocks(); ++lb) {
    const auto& b = f.info(lb);
    n += static_cast<std::uint64_t>(b.nx) * b.ny;
  }
  return n;
}
}  // namespace

void lincomb(comm::Communicator& comm, double a, const comm::DistField& x,
             double b, comm::DistField& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "lincomb field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        y.at(lb, i, j) = a * x.at(lb, i, j) + b * y.at(lb, i, j);
  }
  comm.costs().add_flops(2 * interior_points(x));
}

void axpy(comm::Communicator& comm, double a, const comm::DistField& x,
          comm::DistField& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "axpy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        y.at(lb, i, j) += a * x.at(lb, i, j);
  }
  comm.costs().add_flops(2 * interior_points(x));
}

void scale(comm::Communicator& comm, double a, comm::DistField& x) {
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) x.at(lb, i, j) *= a;
  }
  comm.costs().add_flops(interior_points(x));
}

void copy_interior(const comm::DistField& x, comm::DistField& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "copy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) y.at(lb, i, j) = x.at(lb, i, j);
  }
}

void fill_interior(comm::DistField& x, double v) {
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) x.at(lb, i, j) = v;
  }
}

}  // namespace minipop::solver
