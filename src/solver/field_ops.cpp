#include "src/solver/field_ops.hpp"

#include "src/solver/kernels.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

namespace {
template <typename T>
std::uint64_t interior_points(const comm::DistFieldT<T>& f) {
  std::uint64_t n = 0;
  for (int lb = 0; lb < f.num_local_blocks(); ++lb) {
    const auto& b = f.info(lb);
    n += static_cast<std::uint64_t>(b.nx) * b.ny;
  }
  return n;
}

std::uint64_t plan_active_points(const SpanPlan& plan) {
  std::uint64_t n = 0;
  for (const auto& bs : plan) n += static_cast<std::uint64_t>(bs.active_points());
  return n;
}

// Region accounting for a field-wide update: when a span plan is in
// play we know the ocean census of the sweep; record it (add_points is
// only meaningful when a plan exists — the dense path has no mask).
void count_update(comm::Communicator& comm, std::uint64_t flops_per_point,
                  std::uint64_t points, const SpanPlan* plan) {
  comm.costs().add_flops(flops_per_point * points);
  if (plan) comm.costs().add_points(plan_active_points(*plan), points);
}
}  // namespace

void lincomb(comm::Communicator& comm, double a, const comm::DistField& x,
             double b, comm::DistField& y, const SpanPlan* plan) {
  MINIPOP_REQUIRE(x.compatible_with(y), "lincomb field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::lincomb_span((*plan)[lb].row_offset(), (*plan)[lb].spans(),
                            info.ny, a, x.interior(lb), x.stride(lb), b,
                            y.interior(lb), y.stride(lb));
    else
      kernels::lincomb(info.nx, info.ny, a, x.interior(lb), x.stride(lb), b,
                       y.interior(lb), y.stride(lb));
  }
  count_update(comm, 2, interior_points(x), plan);
}

void axpy(comm::Communicator& comm, double a, const comm::DistField& x,
          comm::DistField& y, const SpanPlan* plan) {
  MINIPOP_REQUIRE(x.compatible_with(y), "axpy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::axpy_span((*plan)[lb].row_offset(), (*plan)[lb].spans(),
                         info.ny, a, x.interior(lb), x.stride(lb),
                         y.interior(lb), y.stride(lb));
    else
      kernels::axpy(info.nx, info.ny, a, x.interior(lb), x.stride(lb),
                    y.interior(lb), y.stride(lb));
  }
  count_update(comm, 2, interior_points(x), plan);
}

void lincomb_axpy(comm::Communicator& comm, double a,
                  const comm::DistField& x, double b, comm::DistField& y,
                  double c, comm::DistField& z, const SpanPlan* plan) {
  MINIPOP_REQUIRE(x.compatible_with(y) && x.compatible_with(z),
                  "lincomb_axpy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::lincomb_axpy_span((*plan)[lb].row_offset(),
                                 (*plan)[lb].spans(), info.ny, a,
                                 x.interior(lb), x.stride(lb), b,
                                 y.interior(lb), y.stride(lb), c,
                                 z.interior(lb), z.stride(lb));
    else
      kernels::lincomb_axpy(info.nx, info.ny, a, x.interior(lb), x.stride(lb),
                            b, y.interior(lb), y.stride(lb), c,
                            z.interior(lb), z.stride(lb));
  }
  // Same count as the lincomb + axpy it fuses: 2 + 2 ops/point.
  count_update(comm, 4, interior_points(x), plan);
}

void scale(comm::Communicator& comm, double a, comm::DistField& x,
           const SpanPlan* plan) {
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::scale_span((*plan)[lb].row_offset(), (*plan)[lb].spans(),
                          info.ny, a, x.interior(lb), x.stride(lb));
    else
      kernels::scale(info.nx, info.ny, a, x.interior(lb), x.stride(lb));
  }
  count_update(comm, 1, interior_points(x), plan);
}

void copy_interior(const comm::DistField& x, comm::DistField& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "copy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::copy(info.nx, info.ny, x.interior(lb), x.stride(lb),
                  y.interior(lb), y.stride(lb));
  }
}

void fill_interior(comm::DistField& x, double v) {
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::fill(info.nx, info.ny, v, x.interior(lb), x.stride(lb));
  }
}

// ---------------------------------------------------------------------------
// fp32 overloads

void lincomb(comm::Communicator& comm, double a, const comm::DistField32& x,
             double b, comm::DistField32& y, const SpanPlan* plan) {
  MINIPOP_REQUIRE(x.compatible_with(y), "lincomb field mismatch");
  const float af = static_cast<float>(a), bf = static_cast<float>(b);
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::lincomb_span((*plan)[lb].row_offset(), (*plan)[lb].spans(),
                            info.ny, af, x.interior(lb), x.stride(lb), bf,
                            y.interior(lb), y.stride(lb));
    else
      kernels::lincomb(info.nx, info.ny, af, x.interior(lb), x.stride(lb), bf,
                       y.interior(lb), y.stride(lb));
  }
  count_update(comm, 2, interior_points(x), plan);
}

void axpy(comm::Communicator& comm, double a, const comm::DistField32& x,
          comm::DistField32& y, const SpanPlan* plan) {
  MINIPOP_REQUIRE(x.compatible_with(y), "axpy field mismatch");
  const float af = static_cast<float>(a);
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::axpy_span((*plan)[lb].row_offset(), (*plan)[lb].spans(),
                         info.ny, af, x.interior(lb), x.stride(lb),
                         y.interior(lb), y.stride(lb));
    else
      kernels::axpy(info.nx, info.ny, af, x.interior(lb), x.stride(lb),
                    y.interior(lb), y.stride(lb));
  }
  count_update(comm, 2, interior_points(x), plan);
}

void lincomb_axpy(comm::Communicator& comm, double a,
                  const comm::DistField32& x, double b, comm::DistField32& y,
                  double c, comm::DistField32& z, const SpanPlan* plan) {
  MINIPOP_REQUIRE(x.compatible_with(y) && x.compatible_with(z),
                  "lincomb_axpy field mismatch");
  const float af = static_cast<float>(a), bf = static_cast<float>(b),
              cf = static_cast<float>(c);
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::lincomb_axpy_span((*plan)[lb].row_offset(),
                                 (*plan)[lb].spans(), info.ny, af,
                                 x.interior(lb), x.stride(lb), bf,
                                 y.interior(lb), y.stride(lb), cf,
                                 z.interior(lb), z.stride(lb));
    else
      kernels::lincomb_axpy(info.nx, info.ny, af, x.interior(lb),
                            x.stride(lb), bf, y.interior(lb), y.stride(lb),
                            cf, z.interior(lb), z.stride(lb));
  }
  count_update(comm, 4, interior_points(x), plan);
}

void scale(comm::Communicator& comm, double a, comm::DistField32& x,
           const SpanPlan* plan) {
  const float af = static_cast<float>(a);
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::scale_span((*plan)[lb].row_offset(), (*plan)[lb].spans(),
                          info.ny, af, x.interior(lb), x.stride(lb));
    else
      kernels::scale(info.nx, info.ny, af, x.interior(lb), x.stride(lb));
  }
  count_update(comm, 1, interior_points(x), plan);
}

void copy_interior(const comm::DistField32& x, comm::DistField32& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "copy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::copy(info.nx, info.ny, x.interior(lb), x.stride(lb),
                  y.interior(lb), y.stride(lb));
  }
}

void fill_interior(comm::DistField32& x, double v) {
  const float vf = static_cast<float>(v);
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::fill(info.nx, info.ny, vf, x.interior(lb), x.stride(lb));
  }
}

// ---------------------------------------------------------------------------
// Precision boundary

void demote(const comm::DistField& x, comm::DistField32& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "demote field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::convert(info.nx, info.ny, x.interior(lb), x.stride(lb),
                     y.interior(lb), y.stride(lb));
  }
}

void promote(const comm::DistField32& x, comm::DistField& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "promote field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::convert(info.nx, info.ny, x.interior(lb), x.stride(lb),
                     y.interior(lb), y.stride(lb));
  }
}

void axpy_promoted(comm::Communicator& comm, double a,
                   const comm::DistField32& x, comm::DistField& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "axpy_promoted field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    const float* xp = x.interior(lb);
    double* yp = y.interior(lb);
    const std::ptrdiff_t xs = x.stride(lb), ys = y.stride(lb);
    for (int j = 0; j < info.ny; ++j) {
      const float* MINIPOP_RESTRICT xr = xp + j * xs;
      double* MINIPOP_RESTRICT yr = yp + j * ys;
      for (int i = 0; i < info.nx; ++i)
        yr[i] += a * static_cast<double>(xr[i]);
    }
  }
  comm.costs().add_flops(2 * interior_points(x));
}

// ---------------------------------------------------------------------------
// Batched precision boundary

namespace {
template <typename T>
std::uint64_t batch_interior_points(const comm::DistFieldBatchT<T>& f) {
  std::uint64_t n = 0;
  for (int lb = 0; lb < f.num_local_blocks(); ++lb) {
    const auto& b = f.info(lb);
    n += static_cast<std::uint64_t>(b.nx) * b.ny;
  }
  return n;
}
}  // namespace

void demote(const comm::DistFieldBatch& x, comm::DistFieldBatch32& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "batch demote field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    // Interior rows are nb-widened contiguous spans; convert() takes the
    // widened row length directly (see kernels.hpp).
    kernels::convert(info.nx * x.nb(), info.ny, x.interior(lb), x.stride(lb),
                     y.interior(lb), y.stride(lb));
  }
}

void promote(const comm::DistFieldBatch32& x, comm::DistFieldBatch& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "batch promote field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::convert(info.nx * x.nb(), info.ny, x.interior(lb), x.stride(lb),
                     y.interior(lb), y.stride(lb));
  }
}

void axpy_promoted(comm::Communicator& comm, const double* a,
                   const comm::DistFieldBatch32& x, comm::DistFieldBatch& y,
                   const unsigned char* active, int n_act) {
  MINIPOP_REQUIRE(x.compatible_with(y), "batch axpy_promoted field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::axpy_promoted_batch(x.nb(), info.nx, info.ny, a, x.interior(lb),
                                 x.stride(lb), y.interior(lb), y.stride(lb),
                                 active);
  }
  comm.costs().add_flops(2 * batch_interior_points(x) * n_act);
}

void copy_interior(const comm::DistFieldBatch& x, comm::DistFieldBatch& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "batch copy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::copy_batch(x.nb(), info.nx, info.ny, x.interior(lb),
                        x.stride(lb), y.interior(lb), y.stride(lb));
  }
}

}  // namespace minipop::solver
