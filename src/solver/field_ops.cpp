#include "src/solver/field_ops.hpp"

#include "src/solver/kernels.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

namespace {
std::uint64_t interior_points(const comm::DistField& f) {
  std::uint64_t n = 0;
  for (int lb = 0; lb < f.num_local_blocks(); ++lb) {
    const auto& b = f.info(lb);
    n += static_cast<std::uint64_t>(b.nx) * b.ny;
  }
  return n;
}
}  // namespace

void lincomb(comm::Communicator& comm, double a, const comm::DistField& x,
             double b, comm::DistField& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "lincomb field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::lincomb(info.nx, info.ny, a, x.interior(lb), x.stride(lb), b,
                     y.interior(lb), y.stride(lb));
  }
  comm.costs().add_flops(2 * interior_points(x));
}

void axpy(comm::Communicator& comm, double a, const comm::DistField& x,
          comm::DistField& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "axpy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::axpy(info.nx, info.ny, a, x.interior(lb), x.stride(lb),
                  y.interior(lb), y.stride(lb));
  }
  comm.costs().add_flops(2 * interior_points(x));
}

void lincomb_axpy(comm::Communicator& comm, double a,
                  const comm::DistField& x, double b, comm::DistField& y,
                  double c, comm::DistField& z) {
  MINIPOP_REQUIRE(x.compatible_with(y) && x.compatible_with(z),
                  "lincomb_axpy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::lincomb_axpy(info.nx, info.ny, a, x.interior(lb), x.stride(lb),
                          b, y.interior(lb), y.stride(lb), c, z.interior(lb),
                          z.stride(lb));
  }
  // Same count as the lincomb + axpy it fuses: 2 + 2 ops/point.
  comm.costs().add_flops(4 * interior_points(x));
}

void scale(comm::Communicator& comm, double a, comm::DistField& x) {
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::scale(info.nx, info.ny, a, x.interior(lb), x.stride(lb));
  }
  comm.costs().add_flops(interior_points(x));
}

void copy_interior(const comm::DistField& x, comm::DistField& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "copy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::copy(info.nx, info.ny, x.interior(lb), x.stride(lb),
                  y.interior(lb), y.stride(lb));
  }
}

void fill_interior(comm::DistField& x, double v) {
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::fill(info.nx, info.ny, v, x.interior(lb), x.stride(lb));
  }
}

}  // namespace minipop::solver
