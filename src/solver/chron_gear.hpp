// Chronopoulos-Gear solver (paper Algorithm 1; refs [7, 9]) — POP's
// production barotropic solver. A rearranged preconditioned CG whose two
// inner products are evaluated against the same preconditioned residual,
// so the two global reductions fuse into a single MPI_Allreduce per
// iteration. The periodic convergence check rides along in the same
// reduction (one extra scalar), keeping exactly one global reduction per
// iteration as the paper's cost model (Eq. 2) assumes.
#pragma once

#include "src/solver/iterative_solver.hpp"

namespace minipop::solver {

class ChronGearSolver final : public IterativeSolver {
 public:
  explicit ChronGearSolver(const SolverOptions& options = {})
      : opt_(options) {}

  SolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m, const comm::DistField& b,
      comm::DistField& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  std::string name() const override { return "chrongear"; }

 private:
  /// Split-phase path (SolverOptions::overlap): overlapped halo sweeps,
  /// <b,b> hidden behind the initial residual, and the check norm hidden
  /// behind the next iteration's preconditioner + matvec. Bitwise
  /// identical to the blocking path.
  SolveStats solve_overlapped(comm::Communicator& comm,
                              const comm::HaloExchanger& halo,
                              const DistOperator& a, Preconditioner& m,
                              const comm::DistField& b, comm::DistField& x,
                              comm::HaloFreshness x_fresh);

  SolverOptions opt_;
};

}  // namespace minipop::solver
