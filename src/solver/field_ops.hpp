// Vector operations on distributed fields (block interiors only).
// Flop accounting follows the paper's per-point operation counts.
#pragma once

#include "src/comm/communicator.hpp"
#include "src/comm/dist_field.hpp"
#include "src/comm/dist_field_batch.hpp"
#include "src/solver/span_plan.hpp"

namespace minipop::solver {

// Every update op takes an optional land-span plan (DESIGN.md §14,
// usually DistOperator::span_plan()): non-null runs the mask-free span
// kernels, which skip land cells entirely — bit-identical at every
// ocean cell, while land cells keep their +0.0 (solver iterates are
// zero on land, and the dense sweep only ever rewrites that zero).

/// y = a*x + b*y. Covers the solvers' vector updates: axpy (b=1),
/// xpby (a=1), and the general P-CSI update.
void lincomb(comm::Communicator& comm, double a, const comm::DistField& x,
             double b, comm::DistField& y, const SpanPlan* plan = nullptr);

/// y = a*x + y.
void axpy(comm::Communicator& comm, double a, const comm::DistField& x,
          comm::DistField& y, const SpanPlan* plan = nullptr);

/// Fused y = a*x + b*y followed by z += c*y in one sweep (the direction
/// and iterate updates of P-CSI steps 7-8 and ChronGear steps 13-16).
/// Bit-identical to lincomb(a, x, b, y) then axpy(c, y, z).
void lincomb_axpy(comm::Communicator& comm, double a,
                  const comm::DistField& x, double b, comm::DistField& y,
                  double c, comm::DistField& z,
                  const SpanPlan* plan = nullptr);

/// x *= a.
void scale(comm::Communicator& comm, double a, comm::DistField& x,
           const SpanPlan* plan = nullptr);

/// y = x (interiors; free of flops).
void copy_interior(const comm::DistField& x, comm::DistField& y);

/// x = v everywhere in the interiors.
void fill_interior(comm::DistField& x, double v);

// fp32 overloads of the same operations (scalars arrive as double and
// are rounded once to float at entry, not per element).
void lincomb(comm::Communicator& comm, double a, const comm::DistField32& x,
             double b, comm::DistField32& y, const SpanPlan* plan = nullptr);
void axpy(comm::Communicator& comm, double a, const comm::DistField32& x,
          comm::DistField32& y, const SpanPlan* plan = nullptr);
void lincomb_axpy(comm::Communicator& comm, double a,
                  const comm::DistField32& x, double b,
                  comm::DistField32& y, double c, comm::DistField32& z,
                  const SpanPlan* plan = nullptr);
void scale(comm::Communicator& comm, double a, comm::DistField32& x,
           const SpanPlan* plan = nullptr);
void copy_interior(const comm::DistField32& x, comm::DistField32& y);
void fill_interior(comm::DistField32& x, double v);

// Precision boundary of the mixed-precision refinement loop (interiors
// only; halos are refreshed by the next exchange).

/// y32 = (float) x64.
void demote(const comm::DistField& x, comm::DistField32& y);

/// y64 = (double) x32.
void promote(const comm::DistField32& x, comm::DistField& y);

/// y64 += a * x32, widening each fp32 element to double before the
/// multiply — the refinement update x += d without materializing a
/// promoted copy of d.
void axpy_promoted(comm::Communicator& comm, double a,
                   const comm::DistField32& x, comm::DistField& y);

// Batched precision boundary (the batched mixed-precision decorator).
// Same per-element conversions over the nb-widened interior rows.

/// y32_m = (float) x64_m, all members.
void demote(const comm::DistFieldBatch& x, comm::DistFieldBatch32& y);

/// y64_m = (double) x32_m, all members.
void promote(const comm::DistFieldBatch32& x, comm::DistFieldBatch& y);

/// y64_m += a[m] * x32_m for active members — the batched refinement
/// update across the precision boundary. Flops counted for the n_act
/// active lanes.
void axpy_promoted(comm::Communicator& comm, const double* a,
                   const comm::DistFieldBatch32& x, comm::DistFieldBatch& y,
                   const unsigned char* active, int n_act);

/// y = x over all members' interiors.
void copy_interior(const comm::DistFieldBatch& x, comm::DistFieldBatch& y);

}  // namespace minipop::solver
