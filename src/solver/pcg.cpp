#include "src/solver/pcg.hpp"

#include <cmath>

#include "src/solver/field_ops.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

SolveStats PcgSolver::solve(comm::Communicator& comm,
                            const comm::HaloExchanger& halo,
                            const DistOperator& a, Preconditioner& m,
                            const comm::DistField& b, comm::DistField& x,
                            comm::HaloFreshness x_fresh) {
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  comm::DistField r(a.decomposition(), a.rank(), x.halo());
  comm::DistField z(a.decomposition(), a.rank(), x.halo());
  comm::DistField p(a.decomposition(), a.rank(), x.halo());
  comm::DistField q(a.decomposition(), a.rank(), x.halo());

  const double b_norm2 = a.global_dot(comm, b, b);
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  a.residual(comm, halo, b, x, r, x_fresh);

  double rho_old = 1.0;
  fill_interior(p, 0.0);
  ConvergenceGuard guard(opt_);

  for (int k = 1; k <= opt_.max_iterations; ++k) {
    stats.iterations = k;
    m.apply(comm, r, z);

    // Reduction 1: rho = r.z, fused with the periodic convergence check.
    const bool check = (k % opt_.check_frequency == 0);
    double local[2] = {a.local_dot(comm, r, z),
                       check ? a.local_dot(comm, r, r) : 0.0};
    comm.allreduce(std::span<double>(local, check ? 2 : 1),
                   comm::ReduceOp::kSum);
    const double rho = local[0];
    if (check) {
      const double rel = std::sqrt(local[1] / b_norm2);
      if (opt_.record_residuals) stats.residual_history.emplace_back(k, rel);
      if (local[1] <= threshold2) {
        stats.converged = true;
        stats.relative_residual = rel;
        break;
      }
      stats.failure = guard.check(rel);
      if (stats.failure != FailureKind::kNone) break;
    }

    const double beta = rho / rho_old;
    lincomb(comm, 1.0, z, beta, p);  // p = z + beta p

    a.apply(comm, halo, p, q);

    // Reduction 2: sigma = p.q.
    const double sigma = comm.allreduce_sum(a.local_dot(comm, p, q));
    if (!ConvergenceGuard::finite(rho) || !ConvergenceGuard::finite(sigma)) {
      stats.failure = FailureKind::kNanDetected;
      break;
    }
    if (sigma == 0.0) {
      stats.failure = FailureKind::kBreakdown;
      break;
    }
    const double alpha = rho / sigma;
    axpy(comm, alpha, p, x, a.span_plan());
    axpy(comm, -alpha, q, r, a.span_plan());
    rho_old = rho;
  }

  if (!stats.converged) {
    if (stats.failure == FailureKind::kNone)
      stats.failure = FailureKind::kMaxIters;
    stats.relative_residual =
        std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

}  // namespace minipop::solver
