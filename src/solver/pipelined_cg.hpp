// Pipelined preconditioned CG (Ghysels & Vanroose, Parallel Computing
// 2014 — the paper's ref [16] and the main alternative approach its §7
// discusses): instead of removing global reductions like P-CSI, fuse
// both inner products into ONE reduction per iteration and restructure
// the recurrences so that reduction can overlap the matvec and
// preconditioner application that follow it.
//
// Implemented here as the "other road" baseline the paper chose not to
// take. Our virtual-MPI backend has no asynchronous progress, so the
// overlap itself cannot hide latency on this substrate; the algorithmic
// properties — one fused (overlappable) reduction per iteration, extra
// vector updates, identical Krylov convergence — are all real and
// measured, and the perf model can credit the overlap at scale.
//
// Known limitations (inherent to the method, discussed by Ghysels &
// Vanroose and Cools et al.):
//  * the auxiliary recurrences amplify rounding error, so the attainable
//    residual stagnates above plain CG's even with the periodic residual
//    replacement implemented here; use rel_tolerance >= ~1e-10;
//  * any asymmetry of the preconditioner is amplified too — with
//    block-EVP the factory tightens the tile accuracy to 1e-8
//    automatically, and warm-started solves already near convergence can
//    still stagnate.
// Both are reasons the paper's Chebyshev route is the better fit for
// POP's tight-tolerance, warm-started production solves.
#pragma once

#include "src/solver/iterative_solver.hpp"

namespace minipop::solver {

class PipelinedCgSolver final : public IterativeSolver {
 public:
  explicit PipelinedCgSolver(const SolverOptions& options = {})
      : opt_(options) {}

  SolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m, const comm::DistField& b,
      comm::DistField& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  std::string name() const override { return "pipecg"; }

 private:
  SolverOptions opt_;
};

}  // namespace minipop::solver
