#include "src/solver/batched_decorators.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "src/solver/field_ops.hpp"
#include "src/solver/integrity.hpp"
#include "src/solver/preconditioner.hpp"
#include "src/util/error.hpp"
#include "src/util/log.hpp"

namespace minipop::solver {

namespace {

/// Interior of member m := 0 (freezes the member through the inner
/// solve's zero-RHS early-out; see solve_mixed).
void zero_member(comm::DistFieldBatch32& x, int m) {
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) x.at(lb, i, j, m) = 0.0f;
  }
}

void zero_nonfinite(comm::DistFieldBatch& v) {
  const int nb = v.nb();
  for (int lb = 0; lb < v.num_local_blocks(); ++lb) {
    const auto& info = v.info(lb);
    double* p = v.interior(lb);
    const std::ptrdiff_t stride = v.stride(lb);
    const int row = info.nx * nb;  // interior rows are nb-widened spans
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < row; ++i)
        if (!std::isfinite(p[j * stride + i])) p[j * stride + i] = 0.0;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchedMixedPrecisionSolver

BatchedMixedPrecisionSolver::BatchedMixedPrecisionSolver(
    std::unique_ptr<BatchedSolver> fp64_twin, const SolverOptions& options)
    : twin_(std::move(fp64_twin)), opt_(options) {
  MINIPOP_REQUIRE(twin_ != nullptr, "batched mixed precision needs a solver");
  pcsi_ = dynamic_cast<BatchedPcsiSolver*>(twin_.get());
  cg_ = dynamic_cast<BatchedChronGearSolver*>(twin_.get());
  MINIPOP_REQUIRE(pcsi_ != nullptr || cg_ != nullptr,
                  "batched mixed precision wraps batched pcsi or chrongear, "
                  "got '" << twin_->name() << "'");
}

std::string BatchedMixedPrecisionSolver::name() const {
  return std::string(to_string(opt_.precision)) + "(" + twin_->name() + ")";
}

BatchSolveStats BatchedMixedPrecisionSolver::solve(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const DistOperator& a, Preconditioner& m, const comm::DistFieldBatch& b,
    comm::DistFieldBatch& x, comm::HaloFreshness x_fresh) {
  if (forced_fp64_ || opt_.precision == Precision::kFp64)
    return twin_->solve(comm, halo, a, m, b, x, x_fresh);
  if (opt_.precision == Precision::kFp32)
    return solve_fp32(comm, halo, a, m, b, x);
  return solve_mixed(comm, halo, a, m, b, x, x_fresh);
}

BatchSolveStats BatchedMixedPrecisionSolver::solve(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const DistOperator& a, Preconditioner& m,
    const comm::DistFieldBatch32& b, comm::DistFieldBatch32& x,
    comm::HaloFreshness x_fresh) {
  return twin_->solve(comm, halo, a, m, b, x, x_fresh);
}

std::unique_ptr<BatchedSolver> BatchedMixedPrecisionSolver::make_inner()
    const {
  SolverOptions inner = opt_;
  inner.rel_tolerance = opt_.refine_inner_tolerance;
  inner.max_iterations = opt_.refine_max_inner_iterations;
  inner.record_residuals = false;
  if (pcsi_)
    return std::make_unique<BatchedPcsiSolver>(pcsi_->bounds(), inner);
  return std::make_unique<BatchedChronGearSolver>(inner);
}

BatchSolveStats BatchedMixedPrecisionSolver::solve_fp32(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const DistOperator& a, Preconditioner& m, const comm::DistFieldBatch& b,
    comm::DistFieldBatch& x) {
  comm::DistFieldBatch32 b32(a.decomposition(), a.rank(), b.nb(), b.halo());
  comm::DistFieldBatch32 x32(a.decomposition(), a.rank(), x.nb(), x.halo());
  demote(b, b32);
  demote(x, x32);  // halos stale; the first residual refreshes them
  BatchSolveStats stats = twin_->solve(comm, halo, a, m, b32, x32);
  promote(x32, x);
  return stats;
}

BatchSolveStats BatchedMixedPrecisionSolver::solve_mixed(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const DistOperator& a, Preconditioner& m, const comm::DistFieldBatch& b,
    comm::DistFieldBatch& x, comm::HaloFreshness x_fresh) {
  const auto snapshot = comm.costs().counters();
  const int nb = b.nb();
  const bool ov = opt_.overlap;
  BatchSolveStats out;
  out.members.resize(nb);

  comm::DistFieldBatch r(a.decomposition(), a.rank(), nb, x.halo());
  comm::DistFieldBatch32 r32(a.decomposition(), a.rank(), nb, x.halo());
  comm::DistFieldBatch32 d32(a.decomposition(), a.rank(), nb, x.halo());

  // True fp64 member norms and thresholds (the refinement guards).
  std::vector<double> b_norm2(nb, 0.0);
  a.local_dot_batch(comm, b, b, b_norm2.data());
  std::vector<int> bad_idx;
  std::vector<unsigned char> bad_slot(nb, 0);
  if (allreduce_sum_guarded(comm, opt_.integrity,
                            std::span<double>(b_norm2.data(), nb),
                            &bad_idx))
    for (int i : bad_idx) bad_slot[i] = 1;

  std::vector<double> threshold2(nb);
  std::vector<ConvergenceGuard> guards;
  guards.reserve(nb);
  std::vector<unsigned char> active(nb, 1);
  int n_active = nb;
  for (int mm = 0; mm < nb; ++mm) {
    guards.emplace_back(opt_);
    threshold2[mm] = opt_.rel_tolerance * opt_.rel_tolerance * b_norm2[mm];
    if (bad_slot[mm]) {
      // Untrustworthy ||b||² ⇒ untrustworthy threshold: fail the member
      // before it refines (batched-core init parity).
      out.members[mm].failure = FailureKind::kCorruptReduction;
      active[mm] = 0;
      --n_active;
      continue;
    }
    if (b_norm2[mm] == 0.0) {
      // Scalar early-out parity: x_m = 0, converged.
      for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
        const auto& info = x.info(lb);
        for (int j = 0; j < info.ny; ++j)
          for (int i = 0; i < info.nx; ++i) x.at(lb, i, j, mm) = 0.0;
      }
      out.members[mm].converged = true;
      active[mm] = 0;
      --n_active;
    }
  }
  if (n_active == 0) {
    out.costs = comm.costs().since(snapshot);
    return out;
  }

  std::vector<double> sums(nb);
  std::vector<double> ones(nb, 1.0);
  std::vector<unsigned char> accept_s(nb);
  std::vector<FailureKind> audit(nb);
  std::vector<int> member_id(nb);
  for (int mm = 0; mm < nb; ++mm) member_id[mm] = mm;
  BatchIntegrityAuditor auditor(opt_);
  comm::HaloFreshness fresh = x_fresh;

  for (int sweep = 0;; ++sweep) {
    // fp64 residual and per-member convergence check, one vector
    // allreduce per sweep. The batch stays full width here — outer
    // sweeps are few, and frozen members cost nothing in the inner
    // solve (their zeroed residual freezes them at its first check).
    if (ov)
      a.residual_local_norm2_overlapped_batch(comm, halo, b, x, r,
                                              sums.data(), fresh);
    else
      a.residual_local_norm2_batch(comm, halo, b, x, r, sums.data(), fresh);
    fresh = comm::HaloFreshness::kStale;
    bad_idx.clear();
    bool red_bad = false;
    if (ov) {
      // Hide the check reduction behind the (local) demotion of r; the
      // demoted copy is only wasted on the final, converged sweep.
      GuardedReduction req;
      req.post(comm, opt_.integrity, std::span<double>(sums.data(), nb));
      demote(r, r32);
      red_bad = req.wait(&bad_idx);
    } else {
      red_bad = allreduce_sum_guarded(comm, opt_.integrity,
                                      std::span<double>(sums.data(), nb),
                                      &bad_idx);
    }
    if (red_bad) {
      for (int i : bad_idx) {
        if (!active[i]) continue;
        out.members[i].failure = FailureKind::kCorruptReduction;
        active[i] = 0;
        --n_active;
      }
      if (n_active == 0) break;
    }

    accept_s.assign(nb, 0);
    audit.assign(nb, FailureKind::kNone);
    for (int mm = 0; mm < nb; ++mm)
      if (active[mm] && sums[mm] <= threshold2[mm]) accept_s[mm] = 1;
    if (opt_.integrity.any_solver_check()) {
      // The refinement loop's r IS the true fp64 residual (r_is_true),
      // so only the ABFT operator audit applies; slot == member here
      // (the outer batch never compacts).
      auditor.at_check(comm, halo, a, b, r, x, b_norm2.data(),
                       member_id.data(), active.data(), nb, nullptr,
                       /*r_is_true=*/true, accept_s.data(),
                       /*any_accept=*/false, audit.data());
    }

    for (int mm = 0; mm < nb; ++mm) {
      if (!active[mm]) continue;
      if (audit[mm] != FailureKind::kNone) {
        out.members[mm].failure = audit[mm];
        active[mm] = 0;
        --n_active;
        continue;
      }
      const double rel = std::sqrt(sums[mm] / b_norm2[mm]);
      out.members[mm].relative_residual = rel;
      if (accept_s[mm]) {
        out.members[mm].converged = true;
        active[mm] = 0;
        --n_active;
        continue;
      }
      FailureKind f = guards[mm].check(rel);
      if (f == FailureKind::kNone && sweep >= opt_.refine_max_sweeps)
        f = FailureKind::kMaxIters;
      if (f != FailureKind::kNone) {
        out.members[mm].failure = f;
        active[mm] = 0;
        --n_active;
      }
    }
    if (n_active == 0) break;

    // Batched fp32 inner solve of A d = r from zero, to a loose
    // tolerance relative to each member's ||r||. Members already frozen
    // by the outer loop get their residual plane zeroed: the inner
    // solve's zero-RHS early-out freezes them instantly (d_m = 0).
    if (!ov) demote(r, r32);
    for (int mm = 0; mm < nb; ++mm)
      if (!active[mm]) zero_member(r32, mm);
    d32.fill(0.0f);
    const std::unique_ptr<BatchedSolver> inner = make_inner();
    const BatchSolveStats istats =
        inner->solve(comm, halo, a, m, r32, d32);
    out.iterations += istats.iterations;
    out.retirements += istats.retirements;
    ++out.refine_sweeps;
    for (int mm = 0; mm < nb; ++mm) {
      if (!active[mm]) continue;
      out.members[mm].iterations += istats.members[mm].iterations;
      const FailureKind fi = istats.members[mm].failure;
      // Scalar parity: a NaN/breakdown inside the inner solve fails the
      // member before its correction is applied; other inner failures
      // (max_iters at a loose tolerance) still improve x.
      if (fi == FailureKind::kNanDetected ||
          fi == FailureKind::kBreakdown) {
        out.members[mm].failure = fi;
        active[mm] = 0;
        --n_active;
      }
    }
    axpy_promoted(comm, ones.data(), d32, x, active.data(), n_active);
    if (n_active == 0) break;
  }

  out.costs = comm.costs().since(snapshot);
  return out;
}

// ---------------------------------------------------------------------------
// BatchedResilientSolver

BatchedResilientSolver::BatchedResilientSolver(
    std::unique_ptr<BatchedSolver> primary, RecoveryPolicy policy)
    : policy_(policy) {
  MINIPOP_REQUIRE(primary != nullptr, "batched resilient needs a primary");
  Stage st;
  st.batched = std::move(primary);
  chain_.push_back(std::move(st));
}

void BatchedResilientSolver::add_fallback(
    std::unique_ptr<BatchedSolver> solver, bool use_diagonal_precond) {
  MINIPOP_REQUIRE(solver != nullptr, "null batched fallback solver");
  Stage st;
  st.batched = std::move(solver);
  st.use_diagonal_precond = use_diagonal_precond;
  chain_.push_back(std::move(st));
}

void BatchedResilientSolver::add_scalar_fallback(
    std::unique_ptr<IterativeSolver> solver, bool use_diagonal_precond) {
  MINIPOP_REQUIRE(solver != nullptr, "null scalar fallback solver");
  Stage st;
  st.scalar = std::move(solver);
  st.use_diagonal_precond = use_diagonal_precond;
  chain_.push_back(std::move(st));
}

std::string BatchedResilientSolver::name() const {
  return "resilient(" + chain_.front().batched->name() + ")";
}

void BatchedResilientSolver::checkpoint(const comm::DistFieldBatch& x) {
  // Drop snapshots from a different problem shape before reusing the ring.
  while (!ring_.empty() && !ring_.front().compatible_with(x)) ring_.clear();
  comm::DistFieldBatch snap(x.decomposition(), x.rank(), x.nb(), x.halo());
  copy_interior(x, snap);
  ring_.push_front(std::move(snap));
  while (ring_.size() > 2) ring_.pop_back();
}

BatchSolveStats BatchedResilientSolver::run_stage(
    Stage& st, comm::Communicator& comm, const comm::HaloExchanger& halo,
    const DistOperator& a, Preconditioner& m, const comm::DistFieldBatch& bw,
    comm::DistFieldBatch& xw, comm::HaloFreshness fresh) {
  if (st.batched) {
    if (st.use_diagonal_precond) {
      DiagonalPreconditioner diag(a);
      return st.batched->solve(comm, halo, a, diag, bw, xw, fresh);
    }
    return st.batched->solve(comm, halo, a, m, bw, xw, fresh);
  }
  // Scalar demux: the failed members one at a time through the scalar
  // fallback — the configuration that shares no code with the batched
  // engine, so it cannot share its failure mode either.
  const int w = bw.nb();
  BatchSolveStats out;
  out.members.resize(w);
  std::unique_ptr<DiagonalPreconditioner> diag;
  if (st.use_diagonal_precond) diag = std::make_unique<DiagonalPreconditioner>(a);
  comm::DistField b_m(bw.decomposition(), bw.rank(), bw.halo());
  comm::DistField x_m(bw.decomposition(), bw.rank(), bw.halo());
  for (int s = 0; s < w; ++s) {
    bw.store_member(s, b_m);
    xw.store_member(s, x_m);
    const SolveStats ss = st.scalar->solve(
        comm, halo, a, diag ? *diag : m, b_m, x_m, fresh);
    xw.load_member(s, x_m);
    out.members[s].iterations = ss.iterations;
    out.members[s].converged = ss.converged;
    out.members[s].relative_residual = ss.relative_residual;
    out.members[s].failure = ss.failure;
    out.iterations = std::max(out.iterations, ss.iterations);
    out.refine_sweeps += ss.refine_sweeps;
  }
  return out;
}

BatchSolveStats BatchedResilientSolver::solve(comm::Communicator& comm,
                                              const comm::HaloExchanger& halo,
                                              const DistOperator& a,
                                              Preconditioner& m,
                                              const comm::DistFieldBatch& b,
                                              comm::DistFieldBatch& x,
                                              comm::HaloFreshness x_fresh) {
  const auto snapshot = comm.costs().counters();
  const int nb = b.nb();
  checkpoint(x);

  // A previous solve's precision escalation does not outlive it.
  auto* mixed =
      dynamic_cast<BatchedMixedPrecisionSolver*>(chain_.front().batched.get());
  if (mixed) mixed->set_forced_fp64(false);

  BatchSolveStats out;
  out.members.resize(nb);
  std::vector<int> iter_accum(nb, 0);

  // Members still in flight, by ORIGINAL id. Attempt 0 runs the whole
  // caller batch; a recovery transition gathers only the failed members
  // into owned sub-batches.
  std::vector<int> cur(nb);
  for (int mm = 0; mm < nb; ++mm) cur[mm] = mm;
  const comm::DistFieldBatch* bw = &b;
  comm::DistFieldBatch* xw = &x;
  std::unique_ptr<comm::DistFieldBatch> b_sub, x_sub;

  std::size_t stage = 0;
  int restarts_used = 0;
  bool bounds_reestimated = false;
  bool operator_repaired = false;
  comm::HaloFreshness fresh = x_fresh;

  for (int attempt = 0;; ++attempt) {
    const int w = static_cast<int>(cur.size());
    BatchSolveStats stats;
    bool comm_broken = false;
    FailureKind broken_code = FailureKind::kCommTimeout;
    std::vector<double> codes(w, 0.0);
    try {
      stats = run_stage(chain_[stage], comm, halo, a, m, *bw, *xw, fresh);
      for (int s = 0; s < w; ++s)
        codes[s] = stats.members[s].converged
                       ? 0.0
                       : static_cast<double>(
                             static_cast<int>(stats.members[s].failure));
    } catch (const comm::CommTimeoutError&) {
      comm_broken = true;
    } catch (const comm::CorruptPayloadError&) {
      // A halo message failed its CRC. The thrower already called
      // declare_desync() (peers funnel into resync below); the typed
      // code survives the post-resync kMax agreement.
      comm_broken = true;
      broken_code = FailureKind::kCorruptPayload;
    }

    // Agreement: ONE w-element kMax reduction of the member failure
    // codes so every rank takes the same per-member branch — the only
    // collective this decorator adds to a fault-free solve. If a peer
    // timed out, this very reduction throws and routes us to the
    // resync fence too.
    if (!comm_broken) {
      try {
        comm.allreduce(std::span<double>(codes.data(), w),
                       comm::ReduceOp::kMax);
      } catch (const comm::CommTimeoutError&) {
        comm_broken = true;
      }
    }
    if (comm_broken) {
      // Collective fence: every rank funnels here (its solve or its
      // agreement reduction throws), clearing the failed epoch. A
      // timeout poisons the whole working batch: the attempt's iterates
      // are not trustworthy on any member.
      comm.resync();
      std::fill(codes.begin(), codes.end(),
                static_cast<double>(static_cast<int>(broken_code)));
      comm.allreduce(std::span<double>(codes.data(), w),
                     comm::ReduceOp::kMax);
      stats = BatchSolveStats{};
      stats.members.resize(w);
    }

    out.iterations += stats.iterations;
    out.retirements += stats.retirements;
    out.refine_sweeps += stats.refine_sweeps;

    // Settle converged members (their planes are final); collect the
    // failed ones and the worst agreed failure, which drives the chain.
    std::vector<int> failed_slots;
    FailureKind worst = FailureKind::kNone;
    for (int s = 0; s < w; ++s) {
      const int mm = cur[s];
      iter_accum[mm] += stats.members[s].iterations;
      const FailureKind f =
          static_cast<FailureKind>(static_cast<int>(codes[s]));
      if (f == FailureKind::kNone) {
        out.members[mm].converged = true;
        out.members[mm].relative_residual =
            stats.members[s].relative_residual;
        out.members[mm].failure = FailureKind::kNone;
        out.members[mm].iterations = iter_accum[mm];
        if (xw != &x) x.copy_member_from(mm, *xw, s);
      } else {
        failed_slots.push_back(s);
        if (static_cast<int>(f) > static_cast<int>(worst)) worst = f;
      }
    }

    if (failed_slots.empty()) {
      out.costs = comm.costs().since(snapshot);
      return out;
    }

    // --- recovery decision (identical on every rank) ---
    RecoveryEvent ev;
    ev.failure = worst;
    ev.solver = chain_[stage].batched ? chain_[stage].batched->name()
                                      : chain_[stage].scalar->name();
    ev.attempt = attempt;
    ev.iterations = stats.iterations;
    ev.members = static_cast<int>(failed_slots.size());

    enum class Act {
      kRepair, kEscalate, kReestimate, kRestart, kFallback, kGiveUp
    };
    Act act = Act::kGiveUp;
    std::size_t restore_slot = 0;
    if (worst == FailureKind::kCorruptOperator && !operator_repaired) {
      // A corrupted operator is repaired in place, once per solve: no
      // other rung can cure bad coefficients (every retry would re-run
      // the same wrong operator).
      act = Act::kRepair;
    } else if (stage == 0 && mixed && !mixed->forced_fp64() &&
               mixed->precision() != Precision::kFp64 &&
               !needs_resync(worst)) {
      // Cheapest thing to rule out: reduced-precision arithmetic. Not
      // for comm-layer failures (timeouts, corrupt payloads) —
      // precision cannot fix a lost or mangled message.
      act = Act::kEscalate;
    } else if (stage == 0 && policy_.reestimate_bounds &&
               !bounds_reestimated &&
               (worst == FailureKind::kDiverged ||
                worst == FailureKind::kStagnated) &&
               (dynamic_cast<BatchedPcsiSolver*>(
                    chain_[0].batched.get()) != nullptr ||
                (mixed && mixed->pcsi() != nullptr))) {
      act = Act::kReestimate;
    } else if (stage == 0 && restarts_used < policy_.max_restarts) {
      act = Act::kRestart;
      // Restart 1 retries from this solve's entry state; restart 2
      // falls back to the previous solve's (the older ring slot).
      restore_slot = static_cast<std::size_t>(restarts_used);
      ++restarts_used;
    } else if (policy_.fallback && stage + 1 < chain_.size()) {
      act = Act::kFallback;
      ++stage;
    }

    if (act == Act::kGiveUp) {
      ev.action = "give_up";
      events_.push_back(ev);
      if (comm.rank() == 0)
        MINIPOP_WARN("batched resilient solver giving up: "
                     << to_string(worst) << " on " << failed_slots.size()
                     << " member(s) after " << (attempt + 1)
                     << " attempt(s)");
      for (int s : failed_slots) {
        const int mm = cur[s];
        out.members[mm].converged = false;
        out.members[mm].failure =
            static_cast<FailureKind>(static_cast<int>(codes[s]));
        out.members[mm].relative_residual =
            stats.members[s].relative_residual;
        out.members[mm].iterations = iter_accum[mm];
        if (xw != &x) x.copy_member_from(mm, *xw, s);
      }
      out.costs = comm.costs().since(snapshot);
      return out;
    }

    switch (act) {
      case Act::kRepair:
        ev.action = "repair_operator";
        a.repair_coefficients();
        operator_repaired = true;
        break;
      case Act::kEscalate:
        ev.action = "escalate_precision";
        mixed->set_forced_fp64(true);
        break;
      case Act::kReestimate: {
        ev.action = "reestimate_bounds";
        // A diverging P-CSI usually means the Chebyshev interval no
        // longer brackets the spectrum; measure it again (collective).
        // Lanczos itself can fail — a corrupted operator may not even
        // be SPD any more — and that must burn the rung, not escape
        // the recovery chain; the failed members then simply restart
        // from the checkpoint with the bounds unchanged. Its
        // requirement checks fire on globally-reduced values, so every
        // rank throws (or not) together.
        BatchedPcsiSolver* pcsi =
            dynamic_cast<BatchedPcsiSolver*>(chain_[0].batched.get());
        if (!pcsi && mixed) pcsi = mixed->pcsi();
        try {
          const LanczosResult lr =
              estimate_eigenvalue_bounds(comm, halo, a, m, policy_.lanczos);
          pcsi->set_bounds(lr.bounds);
        } catch (const comm::CommTimeoutError&) {
          throw;
        } catch (const comm::CorruptPayloadError&) {
          throw;
        } catch (const util::Error&) {
          ev.action = "restart";
        }
        bounds_reestimated = true;
        break;
      }
      case Act::kRestart:
        ev.action = "restart";
        break;
      case Act::kFallback:
        ev.action = "fallback";
        break;
      case Act::kGiveUp:
        break;  // handled above
    }
    events_.push_back(ev);

    // Gather ONLY the failed members into width-F recovery sub-batches;
    // their x planes restart from the checkpoint ring (sanitized), the
    // healthy members' results are untouched.
    const int f_n = static_cast<int>(failed_slots.size());
    std::vector<int> next(f_n);
    for (int t = 0; t < f_n; ++t) next[t] = cur[failed_slots[t]];
    auto nb_sub = std::make_unique<comm::DistFieldBatch>(
        b.decomposition(), b.rank(), f_n, b.halo());
    auto nx_sub = std::make_unique<comm::DistFieldBatch>(
        x.decomposition(), x.rank(), f_n, x.halo());
    MINIPOP_REQUIRE(!ring_.empty(), "restore without a checkpoint");
    const comm::DistFieldBatch& snap =
        ring_[std::min(restore_slot, ring_.size() - 1)];
    for (int t = 0; t < f_n; ++t) {
      nb_sub->copy_member_from(t, b, next[t]);
      nx_sub->copy_member_from(t, snap, next[t]);
    }
    zero_nonfinite(*nx_sub);
    b_sub = std::move(nb_sub);
    x_sub = std::move(nx_sub);
    bw = b_sub.get();
    xw = x_sub.get();
    cur = std::move(next);
    fresh = comm::HaloFreshness::kStale;
  }
}

// ---------------------------------------------------------------------------
// SequentialBatchedSolver

SequentialBatchedSolver::SequentialBatchedSolver(IterativeSolver* scalar)
    : scalar_(scalar) {
  MINIPOP_REQUIRE(scalar_ != nullptr, "sequential batch needs a solver");
}

std::string SequentialBatchedSolver::name() const {
  return "sequential(" + scalar_->name() + ")";
}

BatchSolveStats SequentialBatchedSolver::solve(comm::Communicator& comm,
                                               const comm::HaloExchanger& halo,
                                               const DistOperator& a,
                                               Preconditioner& m,
                                               const comm::DistFieldBatch& b,
                                               comm::DistFieldBatch& x,
                                               comm::HaloFreshness x_fresh) {
  MINIPOP_REQUIRE(b.compatible_with(x), "sequential batch: b/x mismatch");
  const auto snapshot = comm.costs().counters();
  const int nb = b.nb();
  BatchSolveStats out;
  out.members.resize(nb);
  comm::DistField b_m(b.decomposition(), b.rank(), b.halo());
  comm::DistField x_m(x.decomposition(), x.rank(), x.halo());
  for (int mm = 0; mm < nb; ++mm) {
    b.store_member(mm, b_m);
    x.store_member(mm, x_m);
    const SolveStats s =
        scalar_->solve(comm, halo, a, m, b_m, x_m, x_fresh);
    x.load_member(mm, x_m);
    out.members[mm].iterations = s.iterations;
    out.members[mm].converged = s.converged;
    out.members[mm].relative_residual = s.relative_residual;
    out.members[mm].failure = s.failure;
    out.iterations = std::max(out.iterations, s.iterations);
    out.refine_sweeps += s.refine_sweeps;
  }
  out.costs = comm.costs().since(snapshot);
  return out;
}

}  // namespace minipop::solver
