#include "src/solver/chron_gear.hpp"

#include <cmath>

#include "src/solver/field_ops.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

SolveStats ChronGearSolver::solve(comm::Communicator& comm,
                                  const comm::HaloExchanger& halo,
                                  const DistOperator& a, Preconditioner& m,
                                  const comm::DistField& b,
                                  comm::DistField& x) {
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  comm::DistField r(a.decomposition(), a.rank(), x.halo());
  comm::DistField rp(a.decomposition(), a.rank(), x.halo());  // r' = M^-1 r
  comm::DistField z(a.decomposition(), a.rank(), x.halo());
  comm::DistField s(a.decomposition(), a.rank(), x.halo());
  comm::DistField p(a.decomposition(), a.rank(), x.halo());

  const double b_norm2 = a.global_dot(comm, b, b);
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  // Algorithm 1, step 1.
  a.residual(comm, halo, b, x, r);
  fill_interior(s, 0.0);
  fill_interior(p, 0.0);
  double rho_old = 1.0;
  double sigma_old = 0.0;

  for (int k = 1; k <= opt_.max_iterations; ++k) {
    stats.iterations = k;

    m.apply(comm, r, rp);      // step 4: r'_k = M^-1 r_{k-1}
    a.apply(comm, halo, rp, z);  // steps 5-6: z = B r' (+ boundary update)

    // Steps 7-9: the two (three, on check iterations) local dots fused
    // into one field sweep, then one fused global reduction
    // (rho, delta[, ||r||^2]).
    const bool check = (k % opt_.check_frequency == 0);
    double local[3];
    a.local_dot3(comm, r, rp, z, check, local);
    comm.allreduce(std::span<double>(local, check ? 3 : 2),
                   comm::ReduceOp::kSum);
    const double rho = local[0];
    const double delta = local[1];
    if (check) {
      if (opt_.record_residuals)
        stats.residual_history.emplace_back(k,
                                            std::sqrt(local[2] / b_norm2));
      if (local[2] <= threshold2) {
        stats.converged = true;
        stats.relative_residual = std::sqrt(local[2] / b_norm2);
        break;
      }
    }

    // Steps 10-12.
    const double beta = rho / rho_old;
    const double sigma = delta - beta * beta * sigma_old;
    MINIPOP_REQUIRE(sigma != 0.0, "ChronGear breakdown: sigma == 0");
    const double alpha = rho / sigma;

    // Steps 13-16, fused pairwise into two sweeps: the direction update
    // and the iterate update that consumes it share one pass each.
    lincomb_axpy(comm, 1.0, rp, beta, s, alpha, x);  // s = r' + βs; x += αs
    lincomb_axpy(comm, 1.0, z, beta, p, -alpha, r);  // p = z + βp; r -= αp

    rho_old = rho;
    sigma_old = sigma;
  }

  if (!stats.converged) {
    stats.relative_residual =
        std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

}  // namespace minipop::solver
