#include "src/solver/chron_gear.hpp"

#include <cmath>

#include "src/solver/field_ops.hpp"
#include "src/solver/integrity.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

SolveStats ChronGearSolver::solve(comm::Communicator& comm,
                                  const comm::HaloExchanger& halo,
                                  const DistOperator& a, Preconditioner& m,
                                  const comm::DistField& b,
                                  comm::DistField& x,
                                  comm::HaloFreshness x_fresh) {
  if (opt_.overlap) return solve_overlapped(comm, halo, a, m, b, x, x_fresh);
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  comm::DistField r(a.decomposition(), a.rank(), x.halo());
  comm::DistField rp(a.decomposition(), a.rank(), x.halo());  // r' = M^-1 r
  comm::DistField z(a.decomposition(), a.rank(), x.halo());
  comm::DistField s(a.decomposition(), a.rank(), x.halo());
  comm::DistField p(a.decomposition(), a.rank(), x.halo());

  const double b_norm2 = a.global_dot(comm, b, b);
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  // Algorithm 1, step 1.
  a.residual(comm, halo, b, x, r, x_fresh);
  fill_interior(s, 0.0);
  fill_interior(p, 0.0);
  double rho_old = 1.0;
  double sigma_old = 0.0;
  ConvergenceGuard guard(opt_);
  IntegrityAuditor auditor(opt_);

  for (int k = 1; k <= opt_.max_iterations; ++k) {
    stats.iterations = k;

    m.apply(comm, r, rp);      // step 4: r'_k = M^-1 r_{k-1}
    a.apply(comm, halo, rp, z);  // steps 5-6: z = B r' (+ boundary update)

    // Steps 7-9: the two (three, on check iterations) local dots fused
    // into one field sweep, then one fused global reduction
    // (rho, delta[, ||r||^2]).
    const bool check = (k % opt_.check_frequency == 0);
    double local[3];
    a.local_dot3(comm, r, rp, z, check, local);
    if (allreduce_sum_guarded(comm, opt_.integrity,
                              std::span<double>(local, check ? 3 : 2))) {
      stats.failure = FailureKind::kCorruptReduction;
      break;
    }
    const double rho = local[0];
    const double delta = local[1];
    if (check) {
      const double rel = std::sqrt(local[2] / b_norm2);
      if (opt_.record_residuals) stats.residual_history.emplace_back(k, rel);
      const bool accept = local[2] <= threshold2;
      if (opt_.integrity.any_solver_check()) {
        // ChronGear's r is a recurrence: audit both the operator (ABFT)
        // and the recurrence-vs-true-residual drift — always before an
        // accepting check turns a recurrence claim into "converged".
        stats.failure =
            auditor.at_check(comm, halo, a, b, r, x, b_norm2, local[2],
                             /*r_is_true=*/false, accept);
        if (stats.failure != FailureKind::kNone) break;
      }
      if (accept) {
        stats.converged = true;
        stats.relative_residual = rel;
        break;
      }
      // The checked norm is already reduced, so every rank reaches the
      // same verdict without an extra collective.
      stats.failure = guard.check(rel);
      if (stats.failure != FailureKind::kNone) break;
    }

    // Steps 10-12.
    const double beta = rho / rho_old;
    const double sigma = delta - beta * beta * sigma_old;
    if (!ConvergenceGuard::finite(rho) || !ConvergenceGuard::finite(sigma)) {
      stats.failure = FailureKind::kNanDetected;
      break;
    }
    if (sigma == 0.0) {
      stats.failure = FailureKind::kBreakdown;
      break;
    }
    const double alpha = rho / sigma;

    // Steps 13-16, fused pairwise into two sweeps: the direction update
    // and the iterate update that consumes it share one pass each.
    lincomb_axpy(comm, 1.0, rp, beta, s, alpha, x,
                 a.span_plan());  // s = r' + βs; x += αs
    lincomb_axpy(comm, 1.0, z, beta, p, -alpha, r,
                 a.span_plan());  // p = z + βp; r -= αp

    rho_old = rho;
    sigma_old = sigma;
  }

  if (!stats.converged) {
    if (stats.failure == FailureKind::kNone)
      stats.failure = FailureKind::kMaxIters;
    stats.relative_residual =
        std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

// Split-phase ChronGear. Bitwise identical to the blocking path; what
// differs is only WHEN communication completes:
//   * <b, b> is posted as an iallreduce and flies behind the entire
//     initial residual (halo + sweep);
//   * every halo exchange hides behind the interior stencil sweep
//     (apply_overlapped / residual_overlapped);
//   * the convergence-check norm ||r_{k-1}||² is posted at the END of
//     iteration k-1 and waited at the check point of iteration k, so it
//     flies behind the block-EVP preconditioner application and the
//     matvec. Element-wise, a separate 1-element fixed-order reduction
//     of <r, r> equals the third slot of the blocking path's fused
//     3-element reduction, and masked_dot3's norm accumulator matches
//     masked_dot — so check decisions are unchanged bit for bit.
// The fused {rho, delta} reduction CANNOT be hidden: beta, sigma and
// alpha gate every subsequent operation of the iteration. That exposed
// latency is the paper's argument for replacing ChronGear with P-CSI;
// CostTracker's exposed_comm_seconds now measures it directly.
SolveStats ChronGearSolver::solve_overlapped(comm::Communicator& comm,
                                             const comm::HaloExchanger& halo,
                                             const DistOperator& a,
                                             Preconditioner& m,
                                             const comm::DistField& b,
                                             comm::DistField& x,
                                             comm::HaloFreshness x_fresh) {
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  comm::DistField r(a.decomposition(), a.rank(), x.halo());
  comm::DistField rp(a.decomposition(), a.rank(), x.halo());  // r' = M^-1 r
  comm::DistField z(a.decomposition(), a.rank(), x.halo());
  comm::DistField s(a.decomposition(), a.rank(), x.halo());
  comm::DistField p(a.decomposition(), a.rank(), x.halo());

  // <b, b> hidden behind the initial residual.
  double b_norm2 = a.local_dot(comm, b, b);
  comm::Request b_req =
      comm.iallreduce(std::span<double>(&b_norm2, 1), comm::ReduceOp::kSum);
  a.residual_overlapped(comm, halo, b, x, r, x_fresh);
  b_req.wait();
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  fill_interior(s, 0.0);
  fill_interior(p, 0.0);
  double rho_old = 1.0;
  double sigma_old = 0.0;
  ConvergenceGuard guard(opt_);
  IntegrityAuditor auditor(opt_);

  // norm_buf must be declared before norm_red: an abandoned Request's
  // destructor performs one non-blocking test that can still deliver a
  // matured message into its landing span, so the request has to be
  // destroyed (reverse declaration order) while the buffer is alive.
  double norm_buf = 0.0;
  GuardedReduction norm_red;  // in-flight ||r||² for the next check
  // check_frequency == 1 checks at k = 1, whose norm must be posted
  // before the loop (the general posting site is "end of iteration k-1").
  if (opt_.check_frequency == 1 && opt_.max_iterations >= 1) {
    norm_buf = a.local_dot(comm, r, r);
    norm_red.post(comm, opt_.integrity, std::span<double>(&norm_buf, 1));
  }

  for (int k = 1; k <= opt_.max_iterations; ++k) {
    stats.iterations = k;
    const bool check = (k % opt_.check_frequency == 0);

    m.apply(comm, r, rp);
    a.apply_overlapped(comm, halo, rp, z);

    // The un-hidable reduction: {rho, delta} gate the rest of the
    // iteration. On check iterations the norm reduction posted last
    // iteration has been flying behind m.apply + the matvec above.
    double local[3];
    a.local_dot3(comm, r, rp, z, /*with_norm=*/false, local);
    if (allreduce_sum_guarded(comm, opt_.integrity,
                              std::span<double>(local, 2))) {
      stats.failure = FailureKind::kCorruptReduction;
      break;
    }
    const double rho = local[0];
    const double delta = local[1];
    if (check) {
      if (norm_red.wait()) {
        stats.failure = FailureKind::kCorruptReduction;
        break;
      }
      const double r_norm2 = norm_buf;
      const double rel = std::sqrt(r_norm2 / b_norm2);
      if (opt_.record_residuals) stats.residual_history.emplace_back(k, rel);
      const bool accept = r_norm2 <= threshold2;
      if (opt_.integrity.any_solver_check()) {
        stats.failure =
            auditor.at_check(comm, halo, a, b, r, x, b_norm2, r_norm2,
                             /*r_is_true=*/false, accept);
        if (stats.failure != FailureKind::kNone) break;
      }
      if (accept) {
        stats.converged = true;
        stats.relative_residual = rel;
        break;
      }
      stats.failure = guard.check(rel);
      if (stats.failure != FailureKind::kNone) break;
    }

    const double beta = rho / rho_old;
    const double sigma = delta - beta * beta * sigma_old;
    if (!ConvergenceGuard::finite(rho) || !ConvergenceGuard::finite(sigma)) {
      stats.failure = FailureKind::kNanDetected;
      break;
    }
    if (sigma == 0.0) {
      stats.failure = FailureKind::kBreakdown;
      break;
    }
    const double alpha = rho / sigma;

    lincomb_axpy(comm, 1.0, rp, beta, s, alpha, x,
                 a.span_plan());  // s = r' + βs; x += αs
    lincomb_axpy(comm, 1.0, z, beta, p, -alpha, r,
                 a.span_plan());  // p = z + βp; r -= αp

    // If the NEXT iteration checks convergence, post its ||r||² now —
    // r is final for this iteration, so the reduction can fly behind
    // iteration k+1's preconditioner + matvec.
    if (k + 1 <= opt_.max_iterations &&
        (k + 1) % opt_.check_frequency == 0) {
      norm_buf = a.local_dot(comm, r, r);
      norm_red.post(comm, opt_.integrity, std::span<double>(&norm_buf, 1));
    }

    rho_old = rho;
    sigma_old = sigma;
  }

  if (!stats.converged) {
    if (stats.failure == FailureKind::kNone)
      stats.failure = FailureKind::kMaxIters;
    stats.relative_residual =
        std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

}  // namespace minipop::solver
