#include "src/solver/dist_operator.hpp"

#include <cstring>
#include <type_traits>
#include <vector>

#include "src/fault/fault_injector.hpp"
#include "src/solver/kernels.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

namespace {

/// Raw-pointer view of one block's nine coefficient arrays.
template <typename T>
kernels::Stencil9T<T> stencil_view(
    const std::array<util::Array2D<T>, grid::kNumDirs>& c) {
  return kernels::Stencil9T<T>{
      c[static_cast<int>(grid::Dir::kCenter)].data(),
      c[static_cast<int>(grid::Dir::kEast)].data(),
      c[static_cast<int>(grid::Dir::kWest)].data(),
      c[static_cast<int>(grid::Dir::kNorth)].data(),
      c[static_cast<int>(grid::Dir::kSouth)].data(),
      c[static_cast<int>(grid::Dir::kNorthEast)].data(),
      c[static_cast<int>(grid::Dir::kNorthWest)].data(),
      c[static_cast<int>(grid::Dir::kSouthEast)].data(),
      c[static_cast<int>(grid::Dir::kSouthWest)].data(),
      c[static_cast<int>(grid::Dir::kCenter)].nx()};
}

/// Sub-rectangle of a block interior: [i0, i0+ni) x [j0, j0+nj).
struct SubRect {
  int i0, j0, ni, nj;
};

/// Stencil view with all nine coefficient pointers advanced to (i0, j0).
template <typename T>
kernels::Stencil9T<T> shift(const kernels::Stencil9T<T>& s, int i0, int j0) {
  const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(j0) * s.stride + i0;
  return kernels::Stencil9T<T>{s.c0 + off,  s.ce + off,  s.cw + off,
                               s.cn + off,  s.cs + off,  s.cne + off,
                               s.cnw + off, s.cse + off, s.csw + off,
                               s.stride};
}

/// Field pointer advanced to (i0, j0) of a sub-rectangle.
template <typename T>
T* at(T* base, std::ptrdiff_t stride, const SubRect& r) {
  return base + static_cast<std::ptrdiff_t>(r.j0) * stride + r.i0;
}
template <typename T>
const T* at(const T* base, std::ptrdiff_t stride, const SubRect& r) {
  return base + static_cast<std::ptrdiff_t>(r.j0) * stride + r.i0;
}

/// Batch-plane pointer advanced to member 0 of cell (i0, j0): the
/// member-interleaved layout widens cell columns by nb, the stencil
/// coefficients stay width 1.
template <typename T>
T* at_w(T* base, std::ptrdiff_t stride, int nb, const SubRect& r) {
  return base + static_cast<std::ptrdiff_t>(r.j0) * stride +
         static_cast<std::ptrdiff_t>(r.i0) * nb;
}
template <typename T>
const T* at_w(const T* base, std::ptrdiff_t stride, int nb,
              const SubRect& r) {
  return base + static_cast<std::ptrdiff_t>(r.j0) * stride +
         static_cast<std::ptrdiff_t>(r.i0) * nb;
}

/// Halo-independent interior of an nx x ny block: the 9-point stencil
/// reads only the ±1 ring, so cells at least one in from every edge
/// never touch the halo. False when the block is too thin to have one
/// (then the whole block is rim).
bool interior_rect(int nx, int ny, SubRect* r) {
  if (nx <= 2 || ny <= 2) return false;
  *r = {1, 1, nx - 2, ny - 2};
  return true;
}

/// Complement of interior_rect: 1-wide strips along the four edges (or
/// the whole block when there is no interior).
int rim_rects(int nx, int ny, SubRect out[4]) {
  if (nx <= 2 || ny <= 2) {
    out[0] = {0, 0, nx, ny};
    return 1;
  }
  out[0] = {0, 0, nx, 1};
  out[1] = {0, ny - 1, nx, 1};
  out[2] = {0, 1, 1, ny - 2};
  out[3] = {nx - 1, 1, 1, ny - 2};
  return 4;
}

#if MINIPOP_BOUNDS_CHECK
/// Debug cross-run audit (DESIGN.md §14): after a span sweep, the
/// masked kernel is re-run into scratch and the results must agree
/// bitwise at every ocean cell (land cells are exactly the points the
/// span path is entitled to skip). nb = 1 audits the scalar sweeps.
template <typename T>
void audit_span_field(const util::MaskArray& mask, int nb, int nx, int ny,
                      const T* span_out, std::ptrdiff_t stride,
                      const T* ref, std::ptrdiff_t ref_stride) {
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (!mask(i, j)) continue;
      for (int m = 0; m < nb; ++m) {
        const T a =
            span_out[j * stride + static_cast<std::ptrdiff_t>(i) * nb + m];
        const T b =
            ref[j * ref_stride + static_cast<std::ptrdiff_t>(i) * nb + m];
        MINIPOP_REQUIRE(std::memcmp(&a, &b, sizeof(T)) == 0,
                        "span/masked sweep mismatch at (" << i << "," << j
                                                          << ") member "
                                                          << m);
      }
    }
}

/// Reduction sums must agree bitwise (not just to tolerance): the span
/// loop only drops +0.0 terms from a +0.0-seeded accumulator.
inline void audit_span_sums(const double* span_sums, const double* ref,
                            int n) {
  for (int m = 0; m < n; ++m)
    MINIPOP_REQUIRE(std::memcmp(&span_sums[m], &ref[m], sizeof(double)) == 0,
                    "span/masked reduction mismatch, member " << m);
}
#endif

}  // namespace

DistOperator::DistOperator(const grid::NinePointStencil& stencil,
                           const grid::Decomposition& decomp, int rank)
    : decomp_(&decomp), stencil_(&stencil), rank_(rank),
      phi_(stencil.phi()) {
  MINIPOP_REQUIRE(stencil.nx() == decomp.nx_global() &&
                      stencil.ny() == decomp.ny_global(),
                  "stencil " << stencil.nx() << "x" << stencil.ny()
                             << " vs decomposition " << decomp.nx_global()
                             << "x" << decomp.ny_global());
  MINIPOP_REQUIRE(stencil.periodic_x() == decomp.periodic_x(),
                  "periodicity mismatch");

  const auto& ids = decomp.blocks_of_rank(rank);
  block_coeff_.reserve(ids.size());
  block_mask_.reserve(ids.size());
  for (int id : ids) {
    const auto& b = decomp.block(id);
    std::array<util::Field, grid::kNumDirs> coeffs;
    for (int d = 0; d < grid::kNumDirs; ++d) {
      coeffs[d] = util::Field(b.nx, b.ny);
      const auto& global = stencil.coeff(static_cast<grid::Dir>(d));
      for (int j = 0; j < b.ny; ++j)
        for (int i = 0; i < b.nx; ++i)
          coeffs[d](i, j) = global(b.i0 + i, b.j0 + j);
    }
    util::MaskArray mask(b.nx, b.ny);
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i) {
        mask(i, j) = stencil.mask()(b.i0 + i, b.j0 + j);
        if (mask(i, j)) ++local_ocean_cells_;
      }
    // Span plan (DESIGN.md §14): compress the block mask once; the
    // interior/rim clippings mirror the overlapped sweeps' sub-rects so
    // their shifted field pointers index the re-based spans directly.
    BlockSpans full(mask.data(), mask.nx(), b.nx, b.ny);
#if MINIPOP_BOUNDS_CHECK
    full.validate(mask.data(), mask.nx());
#endif
    SubRect in;
    span_interior_.push_back(interior_rect(b.nx, b.ny, &in)
                                 ? full.clipped(in.i0, in.j0, in.ni, in.nj)
                                 : BlockSpans());
    SubRect rim[4];
    const int nrim = rim_rects(b.nx, b.ny, rim);
    std::array<BlockSpans, 4> rims;
    for (int k = 0; k < nrim; ++k)
      rims[k] = full.clipped(rim[k].i0, rim[k].j0, rim[k].ni, rim[k].nj);
    span_num_rim_.push_back(nrim);
    span_rim_.push_back(std::move(rims));
    span_full_.push_back(std::move(full));

    block_coeff_.push_back(std::move(coeffs));
    block_mask_.push_back(std::move(mask));
  }
  build_column_sums();
}

void DistOperator::build_column_sums() const {
  column_sum_.clear();
  column_sum_.reserve(block_coeff_.size());
  for (std::size_t lb = 0; lb < block_coeff_.size(); ++lb) {
    const auto& c = block_coeff_[lb];
    const auto& mask = block_mask_[lb];
    const int nx = c[0].nx(), ny = c[0].ny();
    util::Field cs(nx, ny);
    // c = A·1: with every x value 1 (halo included), the sweep output
    // at a cell is just the sum of its nine coefficients — no scratch
    // field or halo exchange needed. Land cells are zeroed to match the
    // masked dots that consume the field.
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        double s = 0.0;
        for (int d = 0; d < grid::kNumDirs; ++d) s += c[d](i, j);
        cs(i, j) = mask(i, j) ? s : 0.0;
      }
    column_sum_.push_back(std::move(cs));
  }
}

void DistOperator::repair_coefficients() const {
  const auto& ids = decomp_->blocks_of_rank(rank_);
  for (std::size_t lb = 0; lb < ids.size(); ++lb) {
    const auto& b = decomp_->block(ids[lb]);
    for (int d = 0; d < grid::kNumDirs; ++d) {
      const auto& global = stencil_->coeff(static_cast<grid::Dir>(d));
      util::Field& coeff = block_coeff_[lb][d];
      for (int j = 0; j < b.ny; ++j)
        for (int i = 0; i < b.nx; ++i)
          coeff(i, j) = global(b.i0 + i, b.j0 + j);
    }
  }
  build_column_sums();
  // The fp32 mirror may have been built from corrupted values; drop it
  // so the next fp32 sweep rebuilds from the repaired planes.
  block_coeff32_.clear();
}

void DistOperator::offer_coeff_fault_sites() const {
#if MINIPOP_FAULTS
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    double* planes[grid::kNumDirs];
    for (int d = 0; d < grid::kNumDirs; ++d)
      planes[d] = block_coeff_[lb][d].data();
    fault::hook_coeff_bitflip(rank_, planes, block_coeff_[lb][0].size());
  }
#endif
}

void DistOperator::ensure_coeff32() const {
  if (!block_coeff32_.empty() || block_coeff_.empty()) return;
  block_coeff32_.reserve(block_coeff_.size());
  for (const auto& c : block_coeff_) {
    std::array<util::Array2D<float>, grid::kNumDirs> mirror;
    for (int d = 0; d < grid::kNumDirs; ++d) {
      const util::Field& src = c[d];
      mirror[d] = util::Array2D<float>(src.nx(), src.ny());
      float* dst = mirror[d].data();
      const double* s = src.data();
      for (std::size_t k = 0; k < src.size(); ++k)
        dst[k] = static_cast<float>(s[k]);
    }
    block_coeff32_.push_back(std::move(mirror));
  }
}

template <>
const std::vector<std::array<util::Array2D<double>, grid::kNumDirs>>&
DistOperator::coeffs<double>() const {
  return block_coeff_;
}

template <>
const std::vector<std::array<util::Array2D<float>, grid::kNumDirs>>&
DistOperator::coeffs<float>() const {
  ensure_coeff32();
  return block_coeff32_;
}

const util::Array2D<float>& DistOperator::block_coeff32(int lb,
                                                        grid::Dir d) const {
  ensure_coeff32();
  return block_coeff32_[lb][static_cast<int>(d)];
}

void DistOperator::offer_fault_sites(comm::DistField& v) const {
#if MINIPOP_FAULTS
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = v.info(lb);
    const auto& mask = block_mask_[lb];
    fault::hook_solver_vector(rank_, v.interior(lb), v.stride(lb), info.nx,
                              info.ny, mask.data(), mask.nx());
  }
#else
  (void)v;
#endif
}

template <typename T>
void DistOperator::apply_t(comm::Communicator& comm,
                           const comm::HaloExchanger& halo,
                           comm::DistFieldT<T>& x, comm::DistFieldT<T>& y,
                           comm::HaloFreshness fresh) const {
  MINIPOP_REQUIRE(x.compatible_with(y), "x/y field mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "field does not match operator decomposition");
  MINIPOP_REQUIRE(&x != &y, "apply requires distinct x and y");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();
  if (fresh == comm::HaloFreshness::kStale) halo.exchange(comm, x);

  const auto& coeff = coeffs<T>();
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = x.info(lb);
    if (use_spans_) {
      kernels::apply9_span(stencil_view(coeff[lb]),
                           span_full_[lb].row_offset(),
                           span_full_[lb].spans(), b.ny, x.interior(lb),
                           x.stride(lb), y.interior(lb), y.stride(lb));
#if MINIPOP_BOUNDS_CHECK
      std::vector<T> scratch(static_cast<std::size_t>(b.nx) * b.ny);
      kernels::apply9(stencil_view(coeff[lb]), b.nx, b.ny, x.interior(lb),
                      x.stride(lb), scratch.data(), b.nx);
      audit_span_field(block_mask_[lb], 1, b.nx, b.ny, y.interior(lb),
                       y.stride(lb), scratch.data(), b.nx);
#endif
    } else {
      kernels::apply9(stencil_view(coeff[lb]), b.nx, b.ny, x.interior(lb),
                      x.stride(lb), y.interior(lb), y.stride(lb));
    }
    points += static_cast<std::uint64_t>(b.nx) * b.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  // Paper convention (§2): a nine-point matvec is 9 operations per point.
  comm.costs().add_flops(9 * points);
  comm.costs().add_points(active, points);
  offer_fault_sites(y);
}

template <typename T>
void DistOperator::residual_t(comm::Communicator& comm,
                              const comm::HaloExchanger& halo,
                              const comm::DistFieldT<T>& b,
                              comm::DistFieldT<T>& x, comm::DistFieldT<T>& r,
                              comm::HaloFreshness fresh) const {
  MINIPOP_REQUIRE(b.compatible_with(x) && b.compatible_with(r),
                  "b/x/r field mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "field does not match operator decomposition");
  MINIPOP_REQUIRE(&b != &r && &x != &r, "residual requires distinct r");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();
  if (fresh == comm::HaloFreshness::kStale) halo.exchange(comm, x);

  const auto& coeff = coeffs<T>();
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    if (use_spans_) {
      kernels::residual9_span(stencil_view(coeff[lb]),
                              span_full_[lb].row_offset(),
                              span_full_[lb].spans(), info.ny,
                              b.interior(lb), b.stride(lb), x.interior(lb),
                              x.stride(lb), r.interior(lb), r.stride(lb));
#if MINIPOP_BOUNDS_CHECK
      std::vector<T> scratch(static_cast<std::size_t>(info.nx) * info.ny);
      kernels::residual9(stencil_view(coeff[lb]), info.nx, info.ny,
                         b.interior(lb), b.stride(lb), x.interior(lb),
                         x.stride(lb), scratch.data(), info.nx);
      audit_span_field(block_mask_[lb], 1, info.nx, info.ny,
                       r.interior(lb), r.stride(lb), scratch.data(),
                       info.nx);
#endif
    } else {
      kernels::residual9(stencil_view(coeff[lb]), info.nx, info.ny,
                         b.interior(lb), b.stride(lb), x.interior(lb),
                         x.stride(lb), r.interior(lb), r.stride(lb));
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  // Matvec (9 ops/point) + subtraction (1 op/point), as before fusion.
  comm.costs().add_flops(10 * points);
  comm.costs().add_points(active, points);
  offer_fault_sites(r);
}

template <typename T>
double DistOperator::residual_local_norm2_t(comm::Communicator& comm,
                                            const comm::HaloExchanger& halo,
                                            const comm::DistFieldT<T>& b,
                                            comm::DistFieldT<T>& x,
                                            comm::DistFieldT<T>& r,
                                            comm::HaloFreshness fresh) const {
  MINIPOP_REQUIRE(b.compatible_with(x) && b.compatible_with(r),
                  "b/x/r field mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "field does not match operator decomposition");
  MINIPOP_REQUIRE(&b != &r && &x != &r, "residual requires distinct r");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();
  if (fresh == comm::HaloFreshness::kStale) halo.exchange(comm, x);

  const auto& coeff = coeffs<T>();
  double sum = 0.0;
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    if (use_spans_) {
#if MINIPOP_BOUNDS_CHECK
      const double sum0 = sum;
#endif
      sum = kernels::residual_norm2_9_span(
          stencil_view(coeff[lb]), span_full_[lb].row_offset(),
          span_full_[lb].spans(), info.ny, b.interior(lb), b.stride(lb),
          x.interior(lb), x.stride(lb), r.interior(lb), r.stride(lb), sum);
#if MINIPOP_BOUNDS_CHECK
      std::vector<T> scratch(static_cast<std::size_t>(info.nx) * info.ny);
      const double ref_sum = kernels::residual_norm2_9(
          stencil_view(coeff[lb]), block_mask_[lb].data(),
          block_mask_[lb].nx(), info.nx, info.ny, b.interior(lb),
          b.stride(lb), x.interior(lb), x.stride(lb), scratch.data(),
          info.nx, sum0);
      audit_span_field(block_mask_[lb], 1, info.nx, info.ny,
                       r.interior(lb), r.stride(lb), scratch.data(),
                       info.nx);
      audit_span_sums(&sum, &ref_sum, 1);
#endif
    } else {
      sum = kernels::residual_norm2_9(
          stencil_view(coeff[lb]), block_mask_[lb].data(),
          block_mask_[lb].nx(), info.nx, info.ny, b.interior(lb),
          b.stride(lb), x.interior(lb), x.stride(lb), r.interior(lb),
          r.stride(lb), sum);
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  // Residual (10 ops/point) + masked norm (2 ops/point), as when the
  // sweeps were separate.
  comm.costs().add_flops(12 * points);
  comm.costs().add_points(active, points);
  // Corruption lands after the fused norm was taken, exactly like a bit
  // flip striking between two sweeps: it rides r into the next iterates
  // and the *next* check window must catch it.
  offer_fault_sites(r);
  return sum;
}

template <typename T>
void DistOperator::apply_overlapped_t(comm::Communicator& comm,
                                      const comm::HaloExchanger& halo,
                                      comm::DistFieldT<T>& x,
                                      comm::DistFieldT<T>& y,
                                      comm::HaloFreshness fresh) const {
  if (fresh == comm::HaloFreshness::kFresh) {
    apply_t<T>(comm, halo, x, y, fresh);
    return;
  }
  MINIPOP_REQUIRE(x.compatible_with(y), "x/y field mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "field does not match operator decomposition");
  MINIPOP_REQUIRE(&x != &y, "apply requires distinct x and y");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();

  const auto& coeff = coeffs<T>();
  comm::HaloHandleT<T> inflight = halo.begin(comm, x);
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = x.info(lb);
    SubRect in;
    if (!interior_rect(b.nx, b.ny, &in)) continue;
    if (use_spans_)
      kernels::apply9_span(shift(stencil_view(coeff[lb]), in.i0, in.j0),
                           span_interior_[lb].row_offset(),
                           span_interior_[lb].spans(), in.nj,
                           at(x.interior(lb), x.stride(lb), in),
                           x.stride(lb),
                           at(y.interior(lb), y.stride(lb), in),
                           y.stride(lb));
    else
      kernels::apply9(shift(stencil_view(coeff[lb]), in.i0, in.j0), in.ni,
                      in.nj, at(x.interior(lb), x.stride(lb), in),
                      x.stride(lb), at(y.interior(lb), y.stride(lb), in),
                      y.stride(lb));
  }
  inflight.finish();

  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = x.info(lb);
    SubRect rim[4];
    const int n = rim_rects(b.nx, b.ny, rim);
    for (int k = 0; k < n; ++k) {
      if (use_spans_)
        kernels::apply9_span(
            shift(stencil_view(coeff[lb]), rim[k].i0, rim[k].j0),
            span_rim_[lb][k].row_offset(), span_rim_[lb][k].spans(),
            rim[k].nj, at(x.interior(lb), x.stride(lb), rim[k]),
            x.stride(lb), at(y.interior(lb), y.stride(lb), rim[k]),
            y.stride(lb));
      else
        kernels::apply9(
            shift(stencil_view(coeff[lb]), rim[k].i0, rim[k].j0),
            rim[k].ni, rim[k].nj,
            at(x.interior(lb), x.stride(lb), rim[k]), x.stride(lb),
            at(y.interior(lb), y.stride(lb), rim[k]), y.stride(lb));
    }
    points += static_cast<std::uint64_t>(b.nx) * b.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops(9 * points);
  comm.costs().add_points(active, points);
  offer_fault_sites(y);
}

template <typename T>
void DistOperator::residual_overlapped_t(comm::Communicator& comm,
                                         const comm::HaloExchanger& halo,
                                         const comm::DistFieldT<T>& b,
                                         comm::DistFieldT<T>& x,
                                         comm::DistFieldT<T>& r,
                                         comm::HaloFreshness fresh) const {
  if (fresh == comm::HaloFreshness::kFresh) {
    residual_t<T>(comm, halo, b, x, r, fresh);
    return;
  }
  MINIPOP_REQUIRE(b.compatible_with(x) && b.compatible_with(r),
                  "b/x/r field mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "field does not match operator decomposition");
  MINIPOP_REQUIRE(&b != &r && &x != &r, "residual requires distinct r");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();

  const auto& coeff = coeffs<T>();
  comm::HaloHandleT<T> inflight = halo.begin(comm, x);
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    SubRect in;
    if (!interior_rect(info.nx, info.ny, &in)) continue;
    if (use_spans_)
      kernels::residual9_span(
          shift(stencil_view(coeff[lb]), in.i0, in.j0),
          span_interior_[lb].row_offset(), span_interior_[lb].spans(),
          in.nj, at(b.interior(lb), b.stride(lb), in), b.stride(lb),
          at(x.interior(lb), x.stride(lb), in), x.stride(lb),
          at(r.interior(lb), r.stride(lb), in), r.stride(lb));
    else
      kernels::residual9(shift(stencil_view(coeff[lb]), in.i0, in.j0),
                         in.ni, in.nj,
                         at(b.interior(lb), b.stride(lb), in), b.stride(lb),
                         at(x.interior(lb), x.stride(lb), in), x.stride(lb),
                         at(r.interior(lb), r.stride(lb), in),
                         r.stride(lb));
  }
  inflight.finish();

  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    SubRect rim[4];
    const int n = rim_rects(info.nx, info.ny, rim);
    for (int k = 0; k < n; ++k) {
      if (use_spans_)
        kernels::residual9_span(
            shift(stencil_view(coeff[lb]), rim[k].i0, rim[k].j0),
            span_rim_[lb][k].row_offset(), span_rim_[lb][k].spans(),
            rim[k].nj, at(b.interior(lb), b.stride(lb), rim[k]),
            b.stride(lb), at(x.interior(lb), x.stride(lb), rim[k]),
            x.stride(lb), at(r.interior(lb), r.stride(lb), rim[k]),
            r.stride(lb));
      else
        kernels::residual9(
            shift(stencil_view(coeff[lb]), rim[k].i0, rim[k].j0),
            rim[k].ni, rim[k].nj,
            at(b.interior(lb), b.stride(lb), rim[k]), b.stride(lb),
            at(x.interior(lb), x.stride(lb), rim[k]), x.stride(lb),
            at(r.interior(lb), r.stride(lb), rim[k]), r.stride(lb));
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops(10 * points);
  comm.costs().add_points(active, points);
  offer_fault_sites(r);
}

template <typename T>
double DistOperator::local_dot_t(comm::Communicator& comm,
                                 const comm::DistFieldT<T>& a,
                                 const comm::DistFieldT<T>& b) const {
  MINIPOP_REQUIRE(a.compatible_with(b), "a/b field mismatch");
  double sum = 0.0;
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = a.info(lb);
    const auto& mask = block_mask_[lb];
    if (use_spans_) {
#if MINIPOP_BOUNDS_CHECK
      const double ref = kernels::masked_dot(
          mask.data(), mask.nx(), info.nx, info.ny, a.interior(lb),
          a.stride(lb), b.interior(lb), b.stride(lb), sum);
#endif
      sum = kernels::dot_span(span_full_[lb].row_offset(),
                              span_full_[lb].spans(), info.ny,
                              a.interior(lb), a.stride(lb), b.interior(lb),
                              b.stride(lb), sum);
#if MINIPOP_BOUNDS_CHECK
      audit_span_sums(&sum, &ref, 1);
#endif
    } else {
      sum = kernels::masked_dot(mask.data(), mask.nx(), info.nx, info.ny,
                                a.interior(lb), a.stride(lb),
                                b.interior(lb), b.stride(lb), sum);
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  // Paper convention: inner product is 2 ops/point (multiply + masked add).
  comm.costs().add_flops(2 * points);
  comm.costs().add_points(active, points);
  return sum;
}

template <typename T>
void DistOperator::local_dot3_t(comm::Communicator& comm,
                                const comm::DistFieldT<T>& r,
                                const comm::DistFieldT<T>& rp,
                                const comm::DistFieldT<T>& z, bool with_norm,
                                double out[3]) const {
  MINIPOP_REQUIRE(r.compatible_with(rp) && r.compatible_with(z),
                  "r/rp/z field mismatch");
  out[0] = out[1] = out[2] = 0.0;
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    const auto& mask = block_mask_[lb];
    if (use_spans_) {
#if MINIPOP_BOUNDS_CHECK
      double ref[3] = {out[0], out[1], out[2]};
      kernels::masked_dot3(mask.data(), mask.nx(), info.nx, info.ny,
                           r.interior(lb), r.stride(lb), rp.interior(lb),
                           rp.stride(lb), z.interior(lb), z.stride(lb),
                           with_norm, ref);
#endif
      kernels::dot3_span(span_full_[lb].row_offset(),
                         span_full_[lb].spans(), info.ny, r.interior(lb),
                         r.stride(lb), rp.interior(lb), rp.stride(lb),
                         z.interior(lb), z.stride(lb), with_norm, out);
#if MINIPOP_BOUNDS_CHECK
      audit_span_sums(out, ref, 3);
#endif
    } else {
      kernels::masked_dot3(mask.data(), mask.nx(), info.nx, info.ny,
                           r.interior(lb), r.stride(lb), rp.interior(lb),
                           rp.stride(lb), z.interior(lb), z.stride(lb),
                           with_norm, out);
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops((with_norm ? 6 : 4) * points);
  comm.costs().add_points(active, points);
}

template <typename T>
void DistOperator::mask_interior_t(comm::DistFieldT<T>& x) const {
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    const auto& mask = block_mask_[lb];
    // Gap-zero kernel: writes exactly the land zeros the masked version
    // writes, so the two are unconditionally bitwise identical.
    if (use_spans_)
      kernels::mask_zero_span(span_full_[lb].row_offset(),
                              span_full_[lb].spans(), info.nx, info.ny,
                              x.interior(lb), x.stride(lb));
    else
      kernels::mask_zero(mask.data(), mask.nx(), info.nx, info.ny,
                         x.interior(lb), x.stride(lb));
  }
}

// ---------------------------------------------------------------------------
// Public entry points (double, then the fp32 mirror).

void DistOperator::apply(comm::Communicator& comm,
                         const comm::HaloExchanger& halo,
                         comm::DistField& x, comm::DistField& y,
                         comm::HaloFreshness fresh) const {
  apply_t<double>(comm, halo, x, y, fresh);
}

void DistOperator::residual(comm::Communicator& comm,
                            const comm::HaloExchanger& halo,
                            const comm::DistField& b, comm::DistField& x,
                            comm::DistField& r,
                            comm::HaloFreshness fresh) const {
  residual_t<double>(comm, halo, b, x, r, fresh);
}

double DistOperator::residual_local_norm2(comm::Communicator& comm,
                                          const comm::HaloExchanger& halo,
                                          const comm::DistField& b,
                                          comm::DistField& x,
                                          comm::DistField& r,
                                          comm::HaloFreshness fresh) const {
  return residual_local_norm2_t<double>(comm, halo, b, x, r, fresh);
}

void DistOperator::apply_overlapped(comm::Communicator& comm,
                                    const comm::HaloExchanger& halo,
                                    comm::DistField& x, comm::DistField& y,
                                    comm::HaloFreshness fresh) const {
  apply_overlapped_t<double>(comm, halo, x, y, fresh);
}

void DistOperator::residual_overlapped(comm::Communicator& comm,
                                       const comm::HaloExchanger& halo,
                                       const comm::DistField& b,
                                       comm::DistField& x,
                                       comm::DistField& r,
                                       comm::HaloFreshness fresh) const {
  residual_overlapped_t<double>(comm, halo, b, x, r, fresh);
}

double DistOperator::residual_local_norm2_overlapped(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const comm::DistField& b, comm::DistField& x, comm::DistField& r,
    comm::HaloFreshness fresh) const {
  // The fused kernel threads one row-major accumulator through whole
  // blocks; an interior/rim split would reorder that sum. Instead use
  // the kernel contract "residual_norm2_9 == residual9 + masked_dot":
  // overlap the residual sweep, then take the norm in a second pass with
  // the blocking accumulation order. Flops match the blocking path
  // (10 + 2 per point).
  residual_overlapped_t<double>(comm, halo, b, x, r, fresh);
  return local_dot_t<double>(comm, r, r);
}

double DistOperator::local_dot(comm::Communicator& comm,
                               const comm::DistField& a,
                               const comm::DistField& b) const {
  return local_dot_t<double>(comm, a, b);
}

void DistOperator::local_dot3(comm::Communicator& comm,
                              const comm::DistField& r,
                              const comm::DistField& rp,
                              const comm::DistField& z, bool with_norm,
                              double out[3]) const {
  local_dot3_t<double>(comm, r, rp, z, with_norm, out);
}

double DistOperator::global_dot(comm::Communicator& comm,
                                const comm::DistField& a,
                                const comm::DistField& b) const {
  return comm.allreduce_sum(local_dot(comm, a, b));
}

void DistOperator::mask_interior(comm::DistField& x) const {
  mask_interior_t<double>(x);
}

void DistOperator::abft_local_sums(comm::Communicator& comm,
                                   const comm::DistField& b,
                                   const comm::DistField& r,
                                   const comm::DistField& x,
                                   double out[3]) const {
  MINIPOP_REQUIRE(b.compatible_with(r) && b.compatible_with(x),
                  "b/r/x field mismatch");
  out[0] = out[1] = out[2] = 0.0;
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = b.info(lb);
    const auto& mask = block_mask_[lb];
    const util::Field& cs = column_sum_[lb];
    if (use_spans_) {
      const int* ro = span_full_[lb].row_offset();
      const kernels::Span* sp = span_full_[lb].spans();
      out[0] = kernels::sum_span(ro, sp, info.ny, b.interior(lb),
                                 b.stride(lb), out[0]);
      out[1] = kernels::sum_span(ro, sp, info.ny, r.interior(lb),
                                 r.stride(lb), out[1]);
      out[2] = kernels::dot_shared_span(ro, sp, info.ny, cs.data(),
                                        cs.nx(), x.interior(lb),
                                        x.stride(lb), out[2]);
    } else {
      out[0] = kernels::masked_sum(mask.data(), mask.nx(), info.nx,
                                   info.ny, b.interior(lb), b.stride(lb),
                                   out[0]);
      out[1] = kernels::masked_sum(mask.data(), mask.nx(), info.nx,
                                   info.ny, r.interior(lb), r.stride(lb),
                                   out[1]);
      out[2] = kernels::dot_shared(mask.data(), mask.nx(), info.nx,
                                   info.ny, cs.data(), cs.nx(),
                                   x.interior(lb), x.stride(lb), out[2]);
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  // Two masked sums (1 op/point each) + one shared-factor dot (2).
  comm.costs().add_flops(4 * points);
  comm.costs().add_points(active, points);
}

void DistOperator::abft_local_sums_batch(comm::Communicator& comm,
                                         const comm::DistFieldBatch& b,
                                         const comm::DistFieldBatch& r,
                                         const comm::DistFieldBatch& x,
                                         double* out) const {
  MINIPOP_REQUIRE(b.compatible_with(r) && b.compatible_with(x),
                  "b/r/x batch mismatch");
  const int nb = b.nb();
  for (int m = 0; m < 3 * nb; ++m) out[m] = 0.0;
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = b.info(lb);
    const auto& mask = block_mask_[lb];
    const util::Field& cs = column_sum_[lb];
    if (use_spans_) {
      const int* ro = span_full_[lb].row_offset();
      const kernels::Span* sp = span_full_[lb].spans();
      kernels::sum_span_batch(ro, sp, nb, info.ny, b.interior(lb),
                              b.stride(lb), out);
      kernels::sum_span_batch(ro, sp, nb, info.ny, r.interior(lb),
                              r.stride(lb), out + nb);
      kernels::dot_shared_span_batch(ro, sp, nb, info.ny, cs.data(),
                                     cs.nx(), x.interior(lb), x.stride(lb),
                                     out + 2 * nb);
    } else {
      kernels::masked_sum_batch(mask.data(), mask.nx(), nb, info.nx,
                                info.ny, b.interior(lb), b.stride(lb), out);
      kernels::masked_sum_batch(mask.data(), mask.nx(), nb, info.nx,
                                info.ny, r.interior(lb), r.stride(lb),
                                out + nb);
      kernels::dot_shared_batch(mask.data(), mask.nx(), nb, info.nx,
                                info.ny, cs.data(), cs.nx(), x.interior(lb),
                                x.stride(lb), out + 2 * nb);
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops(4 * points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

void DistOperator::apply(comm::Communicator& comm,
                         const comm::HaloExchanger& halo,
                         comm::DistField32& x, comm::DistField32& y,
                         comm::HaloFreshness fresh) const {
  apply_t<float>(comm, halo, x, y, fresh);
}

void DistOperator::residual(comm::Communicator& comm,
                            const comm::HaloExchanger& halo,
                            const comm::DistField32& b, comm::DistField32& x,
                            comm::DistField32& r,
                            comm::HaloFreshness fresh) const {
  residual_t<float>(comm, halo, b, x, r, fresh);
}

double DistOperator::residual_local_norm2(comm::Communicator& comm,
                                          const comm::HaloExchanger& halo,
                                          const comm::DistField32& b,
                                          comm::DistField32& x,
                                          comm::DistField32& r,
                                          comm::HaloFreshness fresh) const {
  return residual_local_norm2_t<float>(comm, halo, b, x, r, fresh);
}

void DistOperator::apply_overlapped(comm::Communicator& comm,
                                    const comm::HaloExchanger& halo,
                                    comm::DistField32& x,
                                    comm::DistField32& y,
                                    comm::HaloFreshness fresh) const {
  apply_overlapped_t<float>(comm, halo, x, y, fresh);
}

void DistOperator::residual_overlapped(comm::Communicator& comm,
                                       const comm::HaloExchanger& halo,
                                       const comm::DistField32& b,
                                       comm::DistField32& x,
                                       comm::DistField32& r,
                                       comm::HaloFreshness fresh) const {
  residual_overlapped_t<float>(comm, halo, b, x, r, fresh);
}

double DistOperator::residual_local_norm2_overlapped(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const comm::DistField32& b, comm::DistField32& x, comm::DistField32& r,
    comm::HaloFreshness fresh) const {
  residual_overlapped_t<float>(comm, halo, b, x, r, fresh);
  return local_dot_t<float>(comm, r, r);
}

double DistOperator::local_dot(comm::Communicator& comm,
                               const comm::DistField32& a,
                               const comm::DistField32& b) const {
  return local_dot_t<float>(comm, a, b);
}

void DistOperator::local_dot3(comm::Communicator& comm,
                              const comm::DistField32& r,
                              const comm::DistField32& rp,
                              const comm::DistField32& z, bool with_norm,
                              double out[3]) const {
  local_dot3_t<float>(comm, r, rp, z, with_norm, out);
}

double DistOperator::global_dot(comm::Communicator& comm,
                                const comm::DistField32& a,
                                const comm::DistField32& b) const {
  return comm.allreduce_sum(local_dot(comm, a, b));
}

void DistOperator::mask_interior(comm::DistField32& x) const {
  mask_interior_t<float>(x);
}

// ---------------------------------------------------------------------------
// Batched multi-RHS sweeps, templated on the storage scalar. No
// solver-vector fault sites: those corrupt scalar fp64 state; batch
// members recover through the per-member sub-batch path of the
// resilient decorator. Coefficient fault sites DO arm here (the batch
// reads the same fp64 planes as the scalar path), caught by the
// batched ABFT audit.

template <typename T>
void DistOperator::apply_batch(comm::Communicator& comm,
                               const comm::HaloExchanger& halo,
                               comm::DistFieldBatchT<T>& x,
                               comm::DistFieldBatchT<T>& y,
                               comm::HaloFreshness fresh) const {
  MINIPOP_REQUIRE(x.compatible_with(y), "x/y batch mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "batch does not match operator decomposition");
  MINIPOP_REQUIRE(&x != &y, "apply requires distinct x and y");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();
  if (fresh == comm::HaloFreshness::kStale) halo.exchange(comm, x);

  const auto& coeff = coeffs<T>();
  const int nb = x.nb();
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = x.info(lb);
    if (use_spans_) {
      kernels::apply9_span_batch(stencil_view(coeff[lb]),
                                 span_full_[lb].row_offset(),
                                 span_full_[lb].spans(), nb, b.ny,
                                 x.interior(lb), x.stride(lb),
                                 y.interior(lb), y.stride(lb));
#if MINIPOP_BOUNDS_CHECK
      std::vector<T> scratch(static_cast<std::size_t>(b.nx) * b.ny * nb);
      kernels::apply9_batch(stencil_view(coeff[lb]), nb, b.nx, b.ny,
                            x.interior(lb), x.stride(lb), scratch.data(),
                            static_cast<std::ptrdiff_t>(b.nx) * nb);
      audit_span_field(block_mask_[lb], nb, b.nx, b.ny, y.interior(lb),
                       y.stride(lb), scratch.data(),
                       static_cast<std::ptrdiff_t>(b.nx) * nb);
#endif
    } else {
      kernels::apply9_batch(stencil_view(coeff[lb]), nb, b.nx, b.ny,
                            x.interior(lb), x.stride(lb), y.interior(lb),
                            y.stride(lb));
    }
    points += static_cast<std::uint64_t>(b.nx) * b.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops(9 * points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

template <typename T>
void DistOperator::residual_batch(comm::Communicator& comm,
                                  const comm::HaloExchanger& halo,
                                  const comm::DistFieldBatchT<T>& b,
                                  comm::DistFieldBatchT<T>& x,
                                  comm::DistFieldBatchT<T>& r,
                                  comm::HaloFreshness fresh) const {
  MINIPOP_REQUIRE(b.compatible_with(x) && b.compatible_with(r),
                  "b/x/r batch mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "batch does not match operator decomposition");
  MINIPOP_REQUIRE(&b != &r && &x != &r, "residual requires distinct r");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();
  if (fresh == comm::HaloFreshness::kStale) halo.exchange(comm, x);

  const auto& coeff = coeffs<T>();
  const int nb = x.nb();
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    if (use_spans_) {
      kernels::residual9_span_batch(
          stencil_view(coeff[lb]), span_full_[lb].row_offset(),
          span_full_[lb].spans(), nb, info.ny, b.interior(lb), b.stride(lb),
          x.interior(lb), x.stride(lb), r.interior(lb), r.stride(lb));
#if MINIPOP_BOUNDS_CHECK
      std::vector<T> scratch(static_cast<std::size_t>(info.nx) * info.ny *
                             nb);
      kernels::residual9_batch(stencil_view(coeff[lb]), nb, info.nx,
                               info.ny, b.interior(lb), b.stride(lb),
                               x.interior(lb), x.stride(lb), scratch.data(),
                               static_cast<std::ptrdiff_t>(info.nx) * nb);
      audit_span_field(block_mask_[lb], nb, info.nx, info.ny,
                       r.interior(lb), r.stride(lb), scratch.data(),
                       static_cast<std::ptrdiff_t>(info.nx) * nb);
#endif
    } else {
      kernels::residual9_batch(stencil_view(coeff[lb]), nb, info.nx,
                               info.ny, b.interior(lb), b.stride(lb),
                               x.interior(lb), x.stride(lb), r.interior(lb),
                               r.stride(lb));
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops(10 * points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

template <typename T>
void DistOperator::residual_local_norm2_batch(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const comm::DistFieldBatchT<T>& b, comm::DistFieldBatchT<T>& x,
    comm::DistFieldBatchT<T>& r, double* sums,
    comm::HaloFreshness fresh) const {
  MINIPOP_REQUIRE(b.compatible_with(x) && b.compatible_with(r),
                  "b/x/r batch mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "batch does not match operator decomposition");
  MINIPOP_REQUIRE(&b != &r && &x != &r, "residual requires distinct r");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();
  if (fresh == comm::HaloFreshness::kStale) halo.exchange(comm, x);

  const auto& coeff = coeffs<T>();
  const int nb = x.nb();
  for (int m = 0; m < nb; ++m) sums[m] = 0.0;
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    if (use_spans_) {
#if MINIPOP_BOUNDS_CHECK
      std::vector<double> sums0(sums, sums + nb);
#endif
      kernels::residual_norm2_9_span_batch(
          stencil_view(coeff[lb]), span_full_[lb].row_offset(),
          span_full_[lb].spans(), nb, info.ny, b.interior(lb), b.stride(lb),
          x.interior(lb), x.stride(lb), r.interior(lb), r.stride(lb), sums);
#if MINIPOP_BOUNDS_CHECK
      std::vector<T> scratch(static_cast<std::size_t>(info.nx) * info.ny *
                             nb);
      kernels::residual_norm2_9_batch(
          stencil_view(coeff[lb]), block_mask_[lb].data(),
          block_mask_[lb].nx(), nb, info.nx, info.ny, b.interior(lb),
          b.stride(lb), x.interior(lb), x.stride(lb), scratch.data(),
          static_cast<std::ptrdiff_t>(info.nx) * nb, sums0.data());
      audit_span_field(block_mask_[lb], nb, info.nx, info.ny,
                       r.interior(lb), r.stride(lb), scratch.data(),
                       static_cast<std::ptrdiff_t>(info.nx) * nb);
      audit_span_sums(sums, sums0.data(), nb);
#endif
    } else {
      kernels::residual_norm2_9_batch(
          stencil_view(coeff[lb]), block_mask_[lb].data(),
          block_mask_[lb].nx(), nb, info.nx, info.ny, b.interior(lb),
          b.stride(lb), x.interior(lb), x.stride(lb), r.interior(lb),
          r.stride(lb), sums);
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops(12 * points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

template <typename T>
void DistOperator::apply_overlapped_batch(comm::Communicator& comm,
                                          const comm::HaloExchanger& halo,
                                          comm::DistFieldBatchT<T>& x,
                                          comm::DistFieldBatchT<T>& y,
                                          comm::HaloFreshness fresh) const {
  if (fresh == comm::HaloFreshness::kFresh) {
    apply_batch<T>(comm, halo, x, y, fresh);
    return;
  }
  MINIPOP_REQUIRE(x.compatible_with(y), "x/y batch mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "batch does not match operator decomposition");
  MINIPOP_REQUIRE(&x != &y, "apply requires distinct x and y");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();

  const auto& coeff = coeffs<T>();
  const int nb = x.nb();
  comm::HaloHandleT<T> inflight = halo.begin(comm, x);
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = x.info(lb);
    SubRect in;
    if (!interior_rect(b.nx, b.ny, &in)) continue;
    if (use_spans_)
      kernels::apply9_span_batch(
          shift(stencil_view(coeff[lb]), in.i0, in.j0),
          span_interior_[lb].row_offset(), span_interior_[lb].spans(), nb,
          in.nj, at_w(x.interior(lb), x.stride(lb), nb, in), x.stride(lb),
          at_w(y.interior(lb), y.stride(lb), nb, in), y.stride(lb));
    else
      kernels::apply9_batch(shift(stencil_view(coeff[lb]), in.i0, in.j0),
                            nb, in.ni, in.nj,
                            at_w(x.interior(lb), x.stride(lb), nb, in),
                            x.stride(lb),
                            at_w(y.interior(lb), y.stride(lb), nb, in),
                            y.stride(lb));
  }
  inflight.finish();

  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = x.info(lb);
    SubRect rim[4];
    const int n = rim_rects(b.nx, b.ny, rim);
    for (int k = 0; k < n; ++k) {
      if (use_spans_)
        kernels::apply9_span_batch(
            shift(stencil_view(coeff[lb]), rim[k].i0, rim[k].j0),
            span_rim_[lb][k].row_offset(), span_rim_[lb][k].spans(), nb,
            rim[k].nj, at_w(x.interior(lb), x.stride(lb), nb, rim[k]),
            x.stride(lb), at_w(y.interior(lb), y.stride(lb), nb, rim[k]),
            y.stride(lb));
      else
        kernels::apply9_batch(
            shift(stencil_view(coeff[lb]), rim[k].i0, rim[k].j0), nb,
            rim[k].ni, rim[k].nj,
            at_w(x.interior(lb), x.stride(lb), nb, rim[k]), x.stride(lb),
            at_w(y.interior(lb), y.stride(lb), nb, rim[k]), y.stride(lb));
    }
    points += static_cast<std::uint64_t>(b.nx) * b.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops(9 * points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

template <typename T>
void DistOperator::residual_overlapped_batch(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const comm::DistFieldBatchT<T>& b, comm::DistFieldBatchT<T>& x,
    comm::DistFieldBatchT<T>& r, comm::HaloFreshness fresh) const {
  if (fresh == comm::HaloFreshness::kFresh) {
    residual_batch<T>(comm, halo, b, x, r, fresh);
    return;
  }
  MINIPOP_REQUIRE(b.compatible_with(x) && b.compatible_with(r),
                  "b/x/r batch mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "batch does not match operator decomposition");
  MINIPOP_REQUIRE(&b != &r && &x != &r, "residual requires distinct r");
  if constexpr (std::is_same_v<T, double>) offer_coeff_fault_sites();

  const auto& coeff = coeffs<T>();
  const int nb = x.nb();
  comm::HaloHandleT<T> inflight = halo.begin(comm, x);
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    SubRect in;
    if (!interior_rect(info.nx, info.ny, &in)) continue;
    if (use_spans_)
      kernels::residual9_span_batch(
          shift(stencil_view(coeff[lb]), in.i0, in.j0),
          span_interior_[lb].row_offset(), span_interior_[lb].spans(), nb,
          in.nj, at_w(b.interior(lb), b.stride(lb), nb, in), b.stride(lb),
          at_w(x.interior(lb), x.stride(lb), nb, in), x.stride(lb),
          at_w(r.interior(lb), r.stride(lb), nb, in), r.stride(lb));
    else
      kernels::residual9_batch(
          shift(stencil_view(coeff[lb]), in.i0, in.j0), nb, in.ni, in.nj,
          at_w(b.interior(lb), b.stride(lb), nb, in), b.stride(lb),
          at_w(x.interior(lb), x.stride(lb), nb, in), x.stride(lb),
          at_w(r.interior(lb), r.stride(lb), nb, in), r.stride(lb));
  }
  inflight.finish();

  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    SubRect rim[4];
    const int n = rim_rects(info.nx, info.ny, rim);
    for (int k = 0; k < n; ++k) {
      if (use_spans_)
        kernels::residual9_span_batch(
            shift(stencil_view(coeff[lb]), rim[k].i0, rim[k].j0),
            span_rim_[lb][k].row_offset(), span_rim_[lb][k].spans(), nb,
            rim[k].nj, at_w(b.interior(lb), b.stride(lb), nb, rim[k]),
            b.stride(lb), at_w(x.interior(lb), x.stride(lb), nb, rim[k]),
            x.stride(lb), at_w(r.interior(lb), r.stride(lb), nb, rim[k]),
            r.stride(lb));
      else
        kernels::residual9_batch(
            shift(stencil_view(coeff[lb]), rim[k].i0, rim[k].j0), nb,
            rim[k].ni, rim[k].nj,
            at_w(b.interior(lb), b.stride(lb), nb, rim[k]), b.stride(lb),
            at_w(x.interior(lb), x.stride(lb), nb, rim[k]), x.stride(lb),
            at_w(r.interior(lb), r.stride(lb), nb, rim[k]), r.stride(lb));
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops(10 * points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

template <typename T>
void DistOperator::residual_local_norm2_overlapped_batch(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const comm::DistFieldBatchT<T>& b, comm::DistFieldBatchT<T>& x,
    comm::DistFieldBatchT<T>& r, double* sums,
    comm::HaloFreshness fresh) const {
  // Same contract as the scalar overlapped norm²: the fused batch
  // kernel threads whole-block accumulators, so overlap the residual
  // sweep and take the per-member norms in a second pass with the
  // blocking accumulation order ("residual_norm2_9_batch ==
  // residual9_batch + dot_batch"). Flops match the blocking path.
  residual_overlapped_batch<T>(comm, halo, b, x, r, fresh);
  local_dot_batch<T>(comm, r, r, sums);
}

template <typename T>
void DistOperator::local_dot_batch(comm::Communicator& comm,
                                   const comm::DistFieldBatchT<T>& a,
                                   const comm::DistFieldBatchT<T>& b,
                                   double* sums) const {
  MINIPOP_REQUIRE(a.compatible_with(b), "a/b batch mismatch");
  const int nb = a.nb();
  for (int m = 0; m < nb; ++m) sums[m] = 0.0;
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = a.info(lb);
    const auto& mask = block_mask_[lb];
    if (use_spans_) {
#if MINIPOP_BOUNDS_CHECK
      std::vector<double> ref(sums, sums + nb);
      kernels::dot_batch(mask.data(), mask.nx(), nb, info.nx, info.ny,
                         a.interior(lb), a.stride(lb), b.interior(lb),
                         b.stride(lb), ref.data());
#endif
      kernels::dot_span_batch(span_full_[lb].row_offset(),
                              span_full_[lb].spans(), nb, info.ny,
                              a.interior(lb), a.stride(lb), b.interior(lb),
                              b.stride(lb), sums);
#if MINIPOP_BOUNDS_CHECK
      audit_span_sums(sums, ref.data(), nb);
#endif
    } else {
      kernels::dot_batch(mask.data(), mask.nx(), nb, info.nx, info.ny,
                         a.interior(lb), a.stride(lb), b.interior(lb),
                         b.stride(lb), sums);
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops(2 * points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

template <typename T>
void DistOperator::local_dot3_batch(comm::Communicator& comm,
                                    const comm::DistFieldBatchT<T>& r,
                                    const comm::DistFieldBatchT<T>& rp,
                                    const comm::DistFieldBatchT<T>& z,
                                    bool with_norm, double* out) const {
  MINIPOP_REQUIRE(r.compatible_with(rp) && r.compatible_with(z),
                  "r/rp/z batch mismatch");
  const int nb = r.nb();
  for (int m = 0; m < 3 * nb; ++m) out[m] = 0.0;
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    const auto& mask = block_mask_[lb];
    if (use_spans_) {
#if MINIPOP_BOUNDS_CHECK
      std::vector<double> ref(out, out + 3 * nb);
      kernels::dot3_batch(mask.data(), mask.nx(), nb, info.nx, info.ny,
                          r.interior(lb), r.stride(lb), rp.interior(lb),
                          rp.stride(lb), z.interior(lb), z.stride(lb),
                          with_norm, ref.data());
#endif
      kernels::dot3_span_batch(span_full_[lb].row_offset(),
                               span_full_[lb].spans(), nb, info.ny,
                               r.interior(lb), r.stride(lb),
                               rp.interior(lb), rp.stride(lb),
                               z.interior(lb), z.stride(lb), with_norm,
                               out);
#if MINIPOP_BOUNDS_CHECK
      audit_span_sums(out, ref.data(), 3 * nb);
#endif
    } else {
      kernels::dot3_batch(mask.data(), mask.nx(), nb, info.nx, info.ny,
                          r.interior(lb), r.stride(lb), rp.interior(lb),
                          rp.stride(lb), z.interior(lb), z.stride(lb),
                          with_norm, out);
    }
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active += static_cast<std::uint64_t>(span_full_[lb].active_points());
  }
  comm.costs().add_flops((with_norm ? 6u : 4u) * points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

template <typename T>
void DistOperator::mask_interior_batch(comm::DistFieldBatchT<T>& x) const {
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    const auto& mask = block_mask_[lb];
    if (use_spans_)
      kernels::mask_zero_span_batch(span_full_[lb].row_offset(),
                                    span_full_[lb].spans(), x.nb(), info.nx,
                                    info.ny, x.interior(lb), x.stride(lb));
    else
      kernels::mask_zero_batch(mask.data(), mask.nx(), x.nb(), info.nx,
                               info.ny, x.interior(lb), x.stride(lb));
  }
}

#define MINIPOP_DIST_OPERATOR_BATCH_INSTANTIATE(T)                           \
  template void DistOperator::apply_batch<T>(                                \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,                  \
      comm::HaloFreshness) const;                                            \
  template void DistOperator::residual_batch<T>(                             \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,            \
      comm::DistFieldBatchT<T>&, comm::HaloFreshness) const;                 \
  template void DistOperator::residual_local_norm2_batch<T>(                 \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,            \
      comm::DistFieldBatchT<T>&, double*, comm::HaloFreshness) const;        \
  template void DistOperator::apply_overlapped_batch<T>(                     \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,                  \
      comm::HaloFreshness) const;                                            \
  template void DistOperator::residual_overlapped_batch<T>(                  \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,            \
      comm::DistFieldBatchT<T>&, comm::HaloFreshness) const;                 \
  template void DistOperator::residual_local_norm2_overlapped_batch<T>(      \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,            \
      comm::DistFieldBatchT<T>&, double*, comm::HaloFreshness) const;        \
  template void DistOperator::local_dot_batch<T>(                            \
      comm::Communicator&, const comm::DistFieldBatchT<T>&,                  \
      const comm::DistFieldBatchT<T>&, double*) const;                       \
  template void DistOperator::local_dot3_batch<T>(                           \
      comm::Communicator&, const comm::DistFieldBatchT<T>&,                  \
      const comm::DistFieldBatchT<T>&, const comm::DistFieldBatchT<T>&,      \
      bool, double*) const;                                                  \
  template void DistOperator::mask_interior_batch<T>(                        \
      comm::DistFieldBatchT<T>&) const;
MINIPOP_DIST_OPERATOR_BATCH_INSTANTIATE(double)
MINIPOP_DIST_OPERATOR_BATCH_INSTANTIATE(float)
#undef MINIPOP_DIST_OPERATOR_BATCH_INSTANTIATE

}  // namespace minipop::solver
