#include "src/solver/dist_operator.hpp"

#include "src/util/error.hpp"

namespace minipop::solver {

DistOperator::DistOperator(const grid::NinePointStencil& stencil,
                           const grid::Decomposition& decomp, int rank)
    : decomp_(&decomp), rank_(rank), phi_(stencil.phi()) {
  MINIPOP_REQUIRE(stencil.nx() == decomp.nx_global() &&
                      stencil.ny() == decomp.ny_global(),
                  "stencil " << stencil.nx() << "x" << stencil.ny()
                             << " vs decomposition " << decomp.nx_global()
                             << "x" << decomp.ny_global());
  MINIPOP_REQUIRE(stencil.periodic_x() == decomp.periodic_x(),
                  "periodicity mismatch");

  const auto& ids = decomp.blocks_of_rank(rank);
  block_coeff_.reserve(ids.size());
  block_mask_.reserve(ids.size());
  for (int id : ids) {
    const auto& b = decomp.block(id);
    std::array<util::Field, grid::kNumDirs> coeffs;
    for (int d = 0; d < grid::kNumDirs; ++d) {
      coeffs[d] = util::Field(b.nx, b.ny);
      const auto& global = stencil.coeff(static_cast<grid::Dir>(d));
      for (int j = 0; j < b.ny; ++j)
        for (int i = 0; i < b.nx; ++i)
          coeffs[d](i, j) = global(b.i0 + i, b.j0 + j);
    }
    util::MaskArray mask(b.nx, b.ny);
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i) {
        mask(i, j) = stencil.mask()(b.i0 + i, b.j0 + j);
        if (mask(i, j)) ++local_ocean_cells_;
      }
    block_coeff_.push_back(std::move(coeffs));
    block_mask_.push_back(std::move(mask));
  }
}

void DistOperator::apply(comm::Communicator& comm,
                         const comm::HaloExchanger& halo,
                         comm::DistField& x, comm::DistField& y) const {
  MINIPOP_REQUIRE(x.compatible_with(y), "x/y field mismatch");
  MINIPOP_REQUIRE(&x.decomposition() == decomp_ && x.rank() == rank_,
                  "field does not match operator decomposition");
  halo.exchange(comm, x);

  std::uint64_t points = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = x.info(lb);
    const auto& c = block_coeff_[lb];
    const auto& c0 = c[static_cast<int>(grid::Dir::kCenter)];
    const auto& ce = c[static_cast<int>(grid::Dir::kEast)];
    const auto& cw = c[static_cast<int>(grid::Dir::kWest)];
    const auto& cn = c[static_cast<int>(grid::Dir::kNorth)];
    const auto& cs = c[static_cast<int>(grid::Dir::kSouth)];
    const auto& cne = c[static_cast<int>(grid::Dir::kNorthEast)];
    const auto& cnw = c[static_cast<int>(grid::Dir::kNorthWest)];
    const auto& cse = c[static_cast<int>(grid::Dir::kSouthEast)];
    const auto& csw = c[static_cast<int>(grid::Dir::kSouthWest)];
    const util::Field& xd = x.data(lb);
    util::Field& yd = y.data(lb);
    const int h = x.halo();
    for (int j = 0; j < b.ny; ++j) {
      for (int i = 0; i < b.nx; ++i) {
        const int ii = i + h;
        const int jj = j + h;
        yd(ii, jj) = c0(i, j) * xd(ii, jj) + ce(i, j) * xd(ii + 1, jj) +
                     cw(i, j) * xd(ii - 1, jj) + cn(i, j) * xd(ii, jj + 1) +
                     cs(i, j) * xd(ii, jj - 1) +
                     cne(i, j) * xd(ii + 1, jj + 1) +
                     cnw(i, j) * xd(ii - 1, jj + 1) +
                     cse(i, j) * xd(ii + 1, jj - 1) +
                     csw(i, j) * xd(ii - 1, jj - 1);
      }
    }
    points += static_cast<std::uint64_t>(b.nx) * b.ny;
  }
  // Paper convention (§2): a nine-point matvec is 9 operations per point.
  comm.costs().add_flops(9 * points);
}

void DistOperator::residual(comm::Communicator& comm,
                            const comm::HaloExchanger& halo,
                            const comm::DistField& b, comm::DistField& x,
                            comm::DistField& r) const {
  apply(comm, halo, x, r);
  std::uint64_t points = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        r.at(lb, i, j) = b.at(lb, i, j) - r.at(lb, i, j);
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
  }
  comm.costs().add_flops(points);
}

double DistOperator::local_dot(comm::Communicator& comm,
                               const comm::DistField& a,
                               const comm::DistField& b) const {
  MINIPOP_REQUIRE(a.compatible_with(b), "a/b field mismatch");
  double sum = 0.0;
  std::uint64_t points = 0;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = a.info(lb);
    const auto& mask = block_mask_[lb];
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        if (mask(i, j)) sum += a.at(lb, i, j) * b.at(lb, i, j);
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
  }
  // Paper convention: inner product is 2 ops/point (multiply + masked add).
  comm.costs().add_flops(2 * points);
  return sum;
}

double DistOperator::global_dot(comm::Communicator& comm,
                                const comm::DistField& a,
                                const comm::DistField& b) const {
  return comm.allreduce_sum(local_dot(comm, a, b));
}

void DistOperator::mask_interior(comm::DistField& x) const {
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    const auto& mask = block_mask_[lb];
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        if (!mask(i, j)) x.at(lb, i, j) = 0.0;
  }
}

}  // namespace minipop::solver
