// Lanczos estimation of the extreme eigenvalues of M^-1 A (paper §3,
// ref [28]). P-CSI needs the interval [nu, mu]; the paper finds that a
// Lanczos relative-change tolerance of 0.15 gives near-optimal P-CSI
// convergence after only a handful of steps (Fig. 3), costing about as
// much as a few ChronGear iterations.
//
// We run the M-inner-product Lanczos recurrence on the preconditioned
// operator: it needs only applications of A, applications of M^-1, and
// plain inner products (two global reductions per step, init-time only).
// The resulting tridiagonal matrix's extreme eigenvalues (Sturm
// bisection, src/linalg) converge to those of M^-1 A.
#pragma once

#include <cstdint>

#include "src/linalg/tridiag_eigen.hpp"
#include "src/solver/iterative_solver.hpp"
#include "src/solver/pcsi.hpp"

namespace minipop::solver {

struct LanczosOptions {
  int max_steps = 60;
  /// Stop when both extreme eigenvalue estimates change by less than this
  /// relative amount between steps (paper: 0.15). Set <= 0 to run exactly
  /// max_steps (used by the Fig. 3 study).
  double rel_tolerance = 0.15;
  std::uint64_t seed = 7777;
  /// Widen the raw interval a little so Chebyshev stays contractive when
  /// the largest eigenvalue is slightly underestimated.
  double safety_margin = 0.05;
};

struct LanczosResult {
  EigenBounds bounds;   ///< safety-widened interval for P-CSI
  EigenBounds raw;      ///< unwidened estimates
  int steps = 0;
  bool converged = false;
  linalg::Tridiagonal tridiagonal;
};

LanczosResult estimate_eigenvalue_bounds(comm::Communicator& comm,
                                         const comm::HaloExchanger& halo,
                                         const DistOperator& a,
                                         Preconditioner& m,
                                         const LanczosOptions& options = {});

}  // namespace minipop::solver
