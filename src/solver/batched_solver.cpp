#include "src/solver/batched_solver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <type_traits>

#include "src/fault/fault_injector.hpp"
#include "src/solver/comm_avoid.hpp"
#include "src/solver/integrity.hpp"
#include "src/solver/kernels.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

namespace {

/// Interior cell count of one member plane (BlockInfo dims are cells,
/// not the nb-widened storage columns).
template <typename T>
std::uint64_t interior_points(const comm::DistFieldBatchT<T>& f) {
  std::uint64_t n = 0;
  for (int lb = 0; lb < f.num_local_blocks(); ++lb) {
    const auto& b = f.info(lb);
    n += static_cast<std::uint64_t>(b.nx) * b.ny;
  }
  return n;
}

/// y = x over all members' interiors (batched copy_interior).
template <typename T>
void copy_all(const comm::DistFieldBatchT<T>& x, comm::DistFieldBatchT<T>& y) {
  MINIPOP_REQUIRE(x.compatible_with(y), "batch copy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    kernels::copy_batch(x.nb(), info.nx, info.ny, x.interior(lb),
                        x.stride(lb), y.interior(lb), y.stride(lb));
  }
}

/// Interior of member m := v (batched counterpart of fill_interior for
/// one member plane; only used on zero-RHS members, so no fused kernel).
template <typename T>
void fill_member(comm::DistFieldBatchT<T>& x, int m, double v) {
  const T vt = static_cast<T>(v);
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) x.at(lb, i, j, m) = vt;
  }
}

/// Ocean census of a span plan, for land-aware sweep accounting.
std::uint64_t plan_active_points(const SpanPlan& plan) {
  std::uint64_t n = 0;
  for (const auto& bs : plan)
    n += static_cast<std::uint64_t>(bs.active_points());
  return n;
}

/// x_m *= a[m] for active members. Flops counted for active lanes only
/// (scalar parity: a frozen member's scalar solve has already returned).
template <typename T>
void scale_active(comm::Communicator& comm, const T* a,
                  comm::DistFieldBatchT<T>& x,
                  const std::vector<unsigned char>& active, int n_act,
                  const SpanPlan* plan = nullptr) {
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::scale_span_batch((*plan)[lb].row_offset(),
                                (*plan)[lb].spans(), x.nb(), info.ny, a,
                                x.interior(lb), x.stride(lb), active.data());
    else
      kernels::scale_batch(x.nb(), info.nx, info.ny, a, x.interior(lb),
                           x.stride(lb), active.data());
  }
  comm.costs().add_flops(interior_points(x) * n_act);
  if (plan)
    comm.costs().add_points(plan_active_points(*plan) * n_act,
                            interior_points(x) * n_act);
}

/// y_m += a[m] * x_m for active members.
template <typename T>
void axpy_active(comm::Communicator& comm, const T* a,
                 const comm::DistFieldBatchT<T>& x,
                 comm::DistFieldBatchT<T>& y,
                 const std::vector<unsigned char>& active, int n_act,
                 const SpanPlan* plan = nullptr) {
  MINIPOP_REQUIRE(x.compatible_with(y), "batch axpy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::axpy_span_batch((*plan)[lb].row_offset(), (*plan)[lb].spans(),
                               x.nb(), info.ny, a, x.interior(lb),
                               x.stride(lb), y.interior(lb), y.stride(lb),
                               active.data());
    else
      kernels::axpy_batch(x.nb(), info.nx, info.ny, a, x.interior(lb),
                          x.stride(lb), y.interior(lb), y.stride(lb),
                          active.data());
  }
  comm.costs().add_flops(2 * interior_points(x) * n_act);
  if (plan)
    comm.costs().add_points(plan_active_points(*plan) * n_act,
                            interior_points(x) * n_act);
}

/// Fused y_m = a[m] x_m + b[m] y_m; z_m += c[m] y_m for active members.
template <typename T>
void lincomb_axpy_active(comm::Communicator& comm, const T* a,
                         const comm::DistFieldBatchT<T>& x, const T* b,
                         comm::DistFieldBatchT<T>& y, const T* c,
                         comm::DistFieldBatchT<T>& z,
                         const std::vector<unsigned char>& active,
                         int n_act, const SpanPlan* plan = nullptr) {
  MINIPOP_REQUIRE(x.compatible_with(y) && x.compatible_with(z),
                  "batch lincomb_axpy field mismatch");
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    if (plan)
      kernels::lincomb_axpy_span_batch(
          (*plan)[lb].row_offset(), (*plan)[lb].spans(), x.nb(), info.ny, a,
          x.interior(lb), x.stride(lb), b, y.interior(lb), y.stride(lb), c,
          z.interior(lb), z.stride(lb), active.data());
    else
      kernels::lincomb_axpy_batch(x.nb(), info.nx, info.ny, a,
                                  x.interior(lb), x.stride(lb), b,
                                  y.interior(lb), y.stride(lb), c,
                                  z.interior(lb), z.stride(lb),
                                  active.data());
  }
  comm.costs().add_flops(4 * interior_points(x) * n_act);
  if (plan)
    comm.costs().add_points(plan_active_points(*plan) * n_act,
                            interior_points(x) * n_act);
}

/// Slot bookkeeping shared by the batched solvers. Per-MEMBER state
/// (stats, ||b||², thresholds, guards) is indexed by the member's
/// original position in the caller's batch and survives retirement;
/// per-SLOT state (member_of, active) tracks the current, possibly
/// compacted, batch. Thresholds and reduced scalars are double at every
/// storage precision (the fp32 kernels accumulate reductions in fp64).
struct BatchControl {
  BatchSolveStats out;
  std::vector<double> b_norm2;          // by original member
  std::vector<double> threshold2;       // by original member
  std::vector<ConvergenceGuard> guards; // by original member
  /// Member froze without a residual norm in hand (kMaxIters,
  /// kNanDetected, kBreakdown); stamp its relative residual from its
  /// frozen r plane at the next stamp point (retirement or solve end).
  std::vector<unsigned char> needs_stamp;  // by original member
  std::vector<int> member_of;           // slot -> original member
  std::vector<unsigned char> active;    // slot -> still iterating
  int n_active = 0;
  int cur_nb = 0;

  void freeze(int s, bool converged, double rel, FailureKind failure) {
    BatchMemberStats& ms = out.members[member_of[s]];
    ms.converged = converged;
    ms.relative_residual = rel;
    ms.failure = failure;
    active[s] = 0;
    --n_active;
  }
};

/// ||b_m||² for every member with ONE vector allreduce; zero-RHS members
/// resolve immediately (x_m = 0, converged), mirroring the scalar
/// early-out. Returns the initialized control block.
template <typename T>
BatchControl init_control(const SolverOptions& opt, comm::Communicator& comm,
                          const DistOperator& a,
                          const comm::DistFieldBatchT<T>& b,
                          comm::DistFieldBatchT<T>& x) {
  const int nb = b.nb();
  BatchControl ctl;
  ctl.out.members.resize(nb);
  ctl.b_norm2.assign(nb, 0.0);
  ctl.threshold2.assign(nb, 0.0);
  ctl.guards.reserve(nb);
  ctl.needs_stamp.assign(nb, 0);
  ctl.member_of.resize(nb);
  ctl.active.assign(nb, 1);
  ctl.n_active = nb;
  ctl.cur_nb = nb;

  a.local_dot_batch(comm, b, b, ctl.b_norm2.data());
  std::vector<int> bad;
  std::vector<unsigned char> bad_slot(nb, 0);
  if (allreduce_sum_guarded(comm, opt.integrity,
                            std::span<double>(ctl.b_norm2.data(), nb), &bad))
    for (int i : bad) bad_slot[i] = 1;
  for (int m = 0; m < nb; ++m) {
    ctl.guards.emplace_back(opt);
    ctl.member_of[m] = m;
    ctl.threshold2[m] =
        opt.rel_tolerance * opt.rel_tolerance * ctl.b_norm2[m];
    if (bad_slot[m]) {
      // The member's ||b||² — and with it its convergence threshold —
      // is untrustworthy: fail the member before it iterates. Its x
      // plane keeps the caller's initial guess.
      ctl.out.members[m].failure = FailureKind::kCorruptReduction;
      ctl.active[m] = 0;
      --ctl.n_active;
      continue;
    }
    if (ctl.b_norm2[m] == 0.0) {
      fill_member(x, m, 0.0);
      ctl.out.members[m].converged = true;
      ctl.active[m] = 0;
      --ctl.n_active;
    }
  }
  return ctl;
}

/// Stamp the relative residual of every member frozen without a norm in
/// hand, from its (frozen or deterministically recomputed) r plane. One
/// extra vector allreduce; bit-equal per member to the scalar solver's
/// final global_dot(r, r) stamp because dot_batch keeps masked_dot's
/// accumulation order and vector allreduces combine element-wise.
template <typename T>
void stamp_pending(BatchControl& ctl, comm::Communicator& comm,
                   const DistOperator& a, const comm::DistFieldBatchT<T>& r,
                   std::vector<double>& sums) {
  bool any = false;
  for (int s = 0; s < ctl.cur_nb && !any; ++s)
    any = ctl.needs_stamp[ctl.member_of[s]] != 0;
  if (!any) return;
  a.local_dot_batch(comm, r, r, sums.data());
  comm.allreduce(std::span<double>(sums.data(), ctl.cur_nb),
                 comm::ReduceOp::kSum);
  for (int s = 0; s < ctl.cur_nb; ++s) {
    const int mm = ctl.member_of[s];
    if (!ctl.needs_stamp[mm]) continue;
    ctl.out.members[mm].relative_residual =
        std::sqrt(sums[s] / ctl.b_norm2[mm]);
    ctl.needs_stamp[mm] = 0;
  }
}

/// Member flush to the caller's batch, tolerant of the comm-avoiding
/// paths' wider working halos: same width keeps the historical
/// full-plane copy (halo freshness carries over), differing widths copy
/// the interior (the caller's halos are stale either way after a
/// comm-avoiding solve, matching the scalar path).
template <typename T>
void flush_member(comm::DistFieldBatchT<T>& x_caller, int m,
                  const comm::DistFieldBatchT<T>& xw, int s) {
  if (x_caller.halo() == xw.halo())
    x_caller.copy_member_from(m, xw, s);
  else
    x_caller.copy_member_interior_from(m, xw, s);
}

bool should_retire(const SolverOptions& opt, const BatchControl& ctl) {
  return opt.batch_retire_fraction > 0.0 && ctl.n_active > 0 &&
         ctl.n_active < ctl.cur_nb &&
         static_cast<double>(ctl.n_active) <=
             opt.batch_retire_fraction * ctl.cur_nb;
}

/// Retirement compaction: flush every slot's solution plane back to the
/// caller's batch, then migrate the survivors (b, x and the solver's
/// carried fields) into freshly allocated width-n_active batches and
/// reallocate the per-iteration scratch fields. Pure data movement —
/// no member's arithmetic changes, only the lane count.
template <typename T>
void compact(BatchControl& ctl, comm::Communicator& comm,
             const DistOperator& a, comm::DistFieldBatchT<T>& x_caller,
             const comm::DistFieldBatchT<T>*& bw,
             std::unique_ptr<comm::DistFieldBatchT<T>>& b_own,
             comm::DistFieldBatchT<T>*& xw,
             std::unique_ptr<comm::DistFieldBatchT<T>>& x_own,
             comm::DistFieldBatchT<T>& r,
             const std::vector<comm::DistFieldBatchT<T>*>& carried,
             const std::vector<comm::DistFieldBatchT<T>*>& scratch,
             std::vector<double>& sums, int work_halo) {
  // Frozen failures lose their r planes below; stamp them first.
  stamp_pending(ctl, comm, a, r, sums);

  if (xw != &x_caller)
    for (int s = 0; s < ctl.cur_nb; ++s)
      flush_member(x_caller, ctl.member_of[s], *xw, s);

  std::vector<int> keep;
  keep.reserve(ctl.n_active);
  for (int s = 0; s < ctl.cur_nb; ++s)
    if (ctl.active[s]) keep.push_back(s);
  const int n_new = static_cast<int>(keep.size());
  const auto& decomp = x_caller.decomposition();
  const int rank = x_caller.rank();
  const int halo = work_halo;

  auto nb_own = std::make_unique<comm::DistFieldBatchT<T>>(decomp, rank,
                                                           n_new, halo);
  auto nx_own = std::make_unique<comm::DistFieldBatchT<T>>(decomp, rank,
                                                           n_new, halo);
  for (int t = 0; t < n_new; ++t) {
    nb_own->copy_member_from(t, *bw, keep[t]);
    nx_own->copy_member_from(t, *xw, keep[t]);
  }
  b_own = std::move(nb_own);
  x_own = std::move(nx_own);
  bw = b_own.get();
  xw = x_own.get();

  for (comm::DistFieldBatchT<T>* f : carried) {
    comm::DistFieldBatchT<T> nf(decomp, rank, n_new, halo);
    for (int t = 0; t < n_new; ++t) nf.copy_member_from(t, *f, keep[t]);
    *f = std::move(nf);
  }
  for (comm::DistFieldBatchT<T>* f : scratch)
    *f = comm::DistFieldBatchT<T>(decomp, rank, n_new, halo);

  std::vector<int> member_of(n_new);
  for (int t = 0; t < n_new; ++t) member_of[t] = ctl.member_of[keep[t]];
  ctl.member_of = std::move(member_of);
  ctl.active.assign(n_new, 1);
  ctl.cur_nb = n_new;
  ++ctl.out.retirements;
}

/// Final bookkeeping shared by the solvers: survivors exhaust the
/// iteration budget (kMaxIters), pending residual stamps are resolved,
/// and — if retirement migrated the batch — the compacted solution
/// planes flush back to the caller.
template <typename T>
void finish(BatchControl& ctl, comm::Communicator& comm,
            const DistOperator& a, comm::DistFieldBatchT<T>& x_caller,
            comm::DistFieldBatchT<T>* xw, const comm::DistFieldBatchT<T>& r,
            std::vector<double>& sums) {
  for (int s = 0; s < ctl.cur_nb; ++s) {
    if (!ctl.active[s]) continue;
    const int mm = ctl.member_of[s];
    ctl.out.members[mm].failure = FailureKind::kMaxIters;
    ctl.needs_stamp[mm] = 1;
  }
  stamp_pending(ctl, comm, a, r, sums);
  if (xw != &x_caller)
    for (int s = 0; s < ctl.cur_nb; ++s)
      flush_member(x_caller, ctl.member_of[s], *xw, s);
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchedSolver default fp32 path

BatchSolveStats BatchedSolver::solve(comm::Communicator& /*comm*/,
                                     const comm::HaloExchanger& /*halo*/,
                                     const DistOperator& /*a*/,
                                     Preconditioner& /*m*/,
                                     const comm::DistFieldBatch32& /*b*/,
                                     comm::DistFieldBatch32& /*x*/,
                                     comm::HaloFreshness /*x_fresh*/) {
  MINIPOP_REQUIRE(false,
                  "batched solver '" << name() << "' has no fp32 path");
  return {};
}

// ---------------------------------------------------------------------------
// Batched P-CSI

BatchedPcsiSolver::BatchedPcsiSolver(EigenBounds bounds,
                                     const SolverOptions& options)
    : opt_(options) {
  set_bounds(bounds);
}

BatchedPcsiSolver::~BatchedPcsiSolver() = default;

void BatchedPcsiSolver::set_bounds(EigenBounds bounds) {
  MINIPOP_REQUIRE(bounds.nu > 0.0 && bounds.mu > bounds.nu,
                  "invalid eigenvalue interval [" << bounds.nu << ", "
                                                  << bounds.mu << "]");
  bounds_ = bounds;
}

BatchSolveStats BatchedPcsiSolver::solve(comm::Communicator& comm,
                                         const comm::HaloExchanger& halo,
                                         const DistOperator& a,
                                         Preconditioner& m,
                                         const comm::DistFieldBatch& b,
                                         comm::DistFieldBatch& x,
                                         comm::HaloFreshness x_fresh) {
  return solve_t<double>(comm, halo, a, m, b, x, x_fresh);
}

BatchSolveStats BatchedPcsiSolver::solve(comm::Communicator& comm,
                                         const comm::HaloExchanger& halo,
                                         const DistOperator& a,
                                         Preconditioner& m,
                                         const comm::DistFieldBatch32& b,
                                         comm::DistFieldBatch32& x,
                                         comm::HaloFreshness x_fresh) {
  return solve_t<float>(comm, halo, a, m, b, x, x_fresh);
}

template <typename T>
BatchSolveStats BatchedPcsiSolver::solve_t(comm::Communicator& comm,
                                           const comm::HaloExchanger& halo,
                                           const DistOperator& a,
                                           Preconditioner& m,
                                           const comm::DistFieldBatchT<T>& b,
                                           comm::DistFieldBatchT<T>& x,
                                           comm::HaloFreshness x_fresh) {
  MINIPOP_REQUIRE(b.compatible_with(x), "batched pcsi: b/x mismatch");
  if (opt_.halo_depth > 1 &&
      (m.name() == "diagonal" || m.name() == "identity") &&
      std::min(std::max(opt_.halo_depth, 1),
               a.decomposition().max_halo_width()) > 1)
    return solve_comm_avoid_t<T>(comm, halo, a, m, b, x);
  const auto snapshot = comm.costs().counters();
  const int nb0 = b.nb();
  const bool ov = opt_.overlap;

  BatchControl ctl = init_control(opt_, comm, a, b, x);
  if (ctl.n_active == 0) {
    ctl.out.costs = comm.costs().since(snapshot);
    return ctl.out;
  }

  // Chebyshev constants are member-independent: one shared recurrence,
  // computed in double at every storage precision (the fp32 mirror
  // rounds each coefficient once per fill, exactly like the scalar fp32
  // sweeps round their entry scalars).
  EigenBounds eb = bounds_;
  if constexpr (std::is_same_v<T, double>)
    fault::hook_eigen_bounds(a.rank(), &eb.nu, &eb.mu);
  const double alpha = 2.0 / (eb.mu - eb.nu);
  const double beta = (eb.mu + eb.nu) / (eb.mu - eb.nu);
  const double gamma = beta / alpha;
  double omega = 2.0 / gamma;  // omega_0

  // Until the first retirement the solve runs directly on the caller's
  // planes; compaction migrates into the owned narrow batches.
  const comm::DistFieldBatchT<T>* bw = &b;
  comm::DistFieldBatchT<T>* xw = &x;
  std::unique_ptr<comm::DistFieldBatchT<T>> b_own, x_own;
  comm::DistFieldBatchT<T> r(a.decomposition(), a.rank(), nb0, x.halo());
  comm::DistFieldBatchT<T> rp(a.decomposition(), a.rank(), nb0, x.halo());
  comm::DistFieldBatchT<T> dx(a.decomposition(), a.rank(), nb0, x.halo());

  std::vector<T> ca(nb0), cb(nb0), cc(nb0);
  std::vector<double> sums(nb0);
  std::vector<int> bad_idx;
  std::vector<unsigned char> accept_s(nb0);
  std::vector<FailureKind> audit(nb0);
  BatchIntegrityAuditor auditor(opt_);

  // Initial step (Algorithm 2, step 2), gated so zero-RHS members'
  // solutions stay exactly at the scalar early-out's fill(0).
  if (ov)
    a.residual_overlapped_batch(comm, halo, *bw, *xw, r, x_fresh);
  else
    a.residual_batch(comm, halo, *bw, *xw, r, x_fresh);
  m.apply_batch(comm, r, rp);
  copy_all(rp, dx);
  std::fill(ca.begin(), ca.end(), static_cast<T>(1.0 / gamma));
  scale_active(comm, ca.data(), dx, ctl.active, ctl.n_active,
               a.span_plan());
  std::fill(ca.begin(), ca.end(), static_cast<T>(1.0));
  axpy_active(comm, ca.data(), dx, *xw, ctl.active, ctl.n_active,
              a.span_plan());
  if (ov)
    a.residual_overlapped_batch(comm, halo, *bw, *xw, r);
  else
    a.residual_batch(comm, halo, *bw, *xw, r);

  for (int k = 1; k <= opt_.max_iterations; ++k) {
    ctl.out.iterations = k;
    for (int s = 0; s < ctl.cur_nb; ++s)
      if (ctl.active[s]) ctl.out.members[ctl.member_of[s]].iterations = k;

    omega = 1.0 / (gamma - omega / (4.0 * alpha * alpha));

    m.apply_batch(comm, r, rp);
    std::fill(ca.begin(), ca.begin() + ctl.cur_nb, static_cast<T>(omega));
    std::fill(cb.begin(), cb.begin() + ctl.cur_nb,
              static_cast<T>(gamma * omega - 1.0));
    std::fill(cc.begin(), cc.begin() + ctl.cur_nb, static_cast<T>(1.0));
    lincomb_axpy_active(comm, ca.data(), rp, cb.data(), dx, cc.data(), *xw,
                        ctl.active, ctl.n_active, a.span_plan());

    if (k % opt_.check_frequency == 0) {
      // One fused residual+norm sweep, one CURRENT-WIDTH vector
      // allreduce: slot s reduces bit-identically to the scalar
      // solver's 1-element check reduction for that member.
      if (ov)
        a.residual_local_norm2_overlapped_batch(comm, halo, *bw, *xw, r,
                                                sums.data());
      else
        a.residual_local_norm2_batch(comm, halo, *bw, *xw, r, sums.data());
      bad_idx.clear();
      if (allreduce_sum_guarded(comm, opt_.integrity,
                                std::span<double>(sums.data(), ctl.cur_nb),
                                &bad_idx)) {
        // A mismatched slot's norm is untrustworthy: freeze that member
        // with a typed failure and stamp its residual from its (valid)
        // r plane at the next stamp point.
        for (int i : bad_idx) {
          if (!ctl.active[i]) continue;
          ctl.needs_stamp[ctl.member_of[i]] = 1;
          ctl.freeze(i, false, 0.0, FailureKind::kCorruptReduction);
        }
        if (ctl.n_active == 0) break;
      }
      accept_s.assign(ctl.cur_nb, 0);
      audit.assign(ctl.cur_nb, FailureKind::kNone);
      for (int s = 0; s < ctl.cur_nb; ++s)
        if (ctl.active[s] && sums[s] <= ctl.threshold2[ctl.member_of[s]])
          accept_s[s] = 1;
      if constexpr (std::is_same_v<T, double>) {
        // P-CSI's r IS the true residual, so only the ABFT operator
        // audit applies — run it before any accepting check freezes a
        // member as converged (scalar-auditor parity).
        if (opt_.integrity.any_solver_check())
          auditor.at_check(comm, halo, a, *bw, r, *xw, ctl.b_norm2.data(),
                           ctl.member_of.data(), ctl.active.data(),
                           ctl.cur_nb, nullptr, /*r_is_true=*/true,
                           accept_s.data(), /*any_accept=*/false,
                           audit.data());
      }
      for (int s = 0; s < ctl.cur_nb; ++s) {
        if (!ctl.active[s]) continue;
        const int mm = ctl.member_of[s];
        if (audit[s] != FailureKind::kNone) {
          ctl.needs_stamp[mm] = 1;
          ctl.freeze(s, false, 0.0, audit[s]);
          continue;
        }
        const double rel = std::sqrt(sums[s] / ctl.b_norm2[mm]);
        if (accept_s[s]) {
          ctl.freeze(s, true, rel, FailureKind::kNone);
          continue;
        }
        const FailureKind f = ctl.guards[mm].check(rel);
        // The checked norm doubles as the scalar solver's final
        // global_dot(r, r) stamp (same sweep, same bits), so a guard
        // freeze needs no pending stamp.
        if (f != FailureKind::kNone) ctl.freeze(s, false, rel, f);
      }
      if (ctl.n_active == 0) break;
      if (should_retire(opt_, ctl)) {
        compact(ctl, comm, a, x, bw, b_own, xw, x_own, r, {&r, &dx}, {&rp},
                sums, x.halo());
      }
    } else {
      if (ov)
        a.residual_overlapped_batch(comm, halo, *bw, *xw, r);
      else
        a.residual_batch(comm, halo, *bw, *xw, r);
    }
  }

  finish(ctl, comm, a, x, xw, r, sums);
  ctl.out.costs = comm.costs().since(snapshot);
  return ctl.out;
}

// Communication-avoiding batched P-CSI (DESIGN.md §13): the lockstep
// loop above with the per-iteration exchanges grouped — one deep
// exchange of {x, dx, r} per group of up to `depth` iterations, the
// sweeps running on shrinking extended domains over the whole batch.
// Freeze decisions, retirement compactions and every member's iterates
// are bitwise identical to the depth-1 loop (the ghost arithmetic
// replays the neighbouring owners' operations on identical operands;
// the check norm separates the fused residual+norm sweep into
// residual + dot, which the kernel contract pins to the same bits).
template <typename T>
BatchSolveStats BatchedPcsiSolver::solve_comm_avoid_t(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const DistOperator& a, Preconditioner& m,
    const comm::DistFieldBatchT<T>& b, comm::DistFieldBatchT<T>& x) {
  const auto snapshot = comm.costs().counters();
  const int nb0 = b.nb();

  const int depth = std::min(std::max(opt_.halo_depth, 1),
                             a.decomposition().max_halo_width());
  const CaPrecond kind = m.name() == "diagonal" ? CaPrecond::kDiagonal
                                                : CaPrecond::kIdentity;
  if (!ca_engine_ || ca_engine_op_ != &a || ca_engine_->width() != depth) {
    ca_engine_ = std::make_unique<CommAvoidEngine>(a, depth);
    ca_engine_op_ = &a;
  }
  const CommAvoidEngine& eng = *ca_engine_;

  BatchControl ctl = init_control(opt_, comm, a, b, x);
  if (ctl.n_active == 0) {
    ctl.out.costs = comm.costs().since(snapshot);
    return ctl.out;
  }

  EigenBounds eb = bounds_;
  if constexpr (std::is_same_v<T, double>)
    fault::hook_eigen_bounds(a.rank(), &eb.nu, &eb.mu);
  const double alpha = 2.0 / (eb.mu - eb.nu);
  const double beta = (eb.mu + eb.nu) / (eb.mu - eb.nu);
  const double gamma = beta / alpha;
  double omega = 2.0 / gamma;  // omega_0

  // Deep-halo working copies of the whole batch. Unlike the depth-1
  // path the solve never runs on the caller's planes: every operand of
  // the extended sweeps needs a ghost region at least `depth` wide.
  // (Copied AFTER init_control so zero-RHS members' fill(0) carries in.)
  const int hw = std::max(x.halo(), depth);
  auto b_own = std::make_unique<comm::DistFieldBatchT<T>>(
      a.decomposition(), a.rank(), nb0, hw);
  auto x_own = std::make_unique<comm::DistFieldBatchT<T>>(
      a.decomposition(), a.rank(), nb0, hw);
  for (int mb = 0; mb < nb0; ++mb) {
    b_own->copy_member_interior_from(mb, b, mb);
    x_own->copy_member_interior_from(mb, x, mb);
  }
  const comm::DistFieldBatchT<T>* bw = b_own.get();
  comm::DistFieldBatchT<T>* xw = x_own.get();
  comm::DistFieldBatchT<T> r(a.decomposition(), a.rank(), nb0, hw);
  comm::DistFieldBatchT<T> rp(a.decomposition(), a.rank(), nb0, hw);
  comm::DistFieldBatchT<T> dx(a.decomposition(), a.rank(), nb0, hw);

  std::vector<T> ca(nb0), cb(nb0), cc(nb0);
  std::vector<double> sums(nb0);
  std::vector<int> bad_idx;
  std::vector<unsigned char> accept_s(nb0);
  std::vector<FailureKind> audit(nb0);
  BatchIntegrityAuditor auditor(opt_);

  // b's deep ghosts feed every extended residual sweep and b never
  // changes: ONE exchange per solve (compaction's full-plane member
  // migration preserves the ghosts across retirements).
  halo.exchange(comm, *b_own);

  // Initial step (Algorithm 2, step 2), gated like the depth-1 path so
  // zero-RHS members' solutions stay exactly at the early-out's fill(0).
  a.residual_batch(comm, halo, *bw, *xw, r);
  m.apply_batch(comm, r, rp);
  copy_all(rp, dx);
  std::fill(ca.begin(), ca.end(), static_cast<T>(1.0 / gamma));
  scale_active(comm, ca.data(), dx, ctl.active, ctl.n_active,
               a.span_plan());
  std::fill(ca.begin(), ca.end(), static_cast<T>(1.0));
  axpy_active(comm, ca.data(), dx, *xw, ctl.active, ctl.n_active,
              a.span_plan());
  a.residual_batch(comm, halo, *bw, *xw, r);

  int k = 1;
  while (k <= opt_.max_iterations) {
    // Group boundaries align with check iterations, so the checked r is
    // always the group's final interior residual.
    const int to_check =
        opt_.check_frequency - ((k - 1) % opt_.check_frequency);
    const int remaining = opt_.max_iterations - k + 1;
    const int g = std::min({depth, to_check, remaining});

    // Rebuilt every group: retirement compaction migrates the fields.
    const comm::FieldSetT<T> group_sets[3] = {
        comm::FieldSetT<T>(*xw), comm::FieldSetT<T>(dx),
        comm::FieldSetT<T>(r)};
    halo.exchange_group<T>(
        comm, std::span<const comm::FieldSetT<T>>(group_sets, 3));

    for (int j = 1; j <= g; ++j, ++k) {
      ctl.out.iterations = k;
      for (int s = 0; s < ctl.cur_nb; ++s)
        if (ctl.active[s]) ctl.out.members[ctl.member_of[s]].iterations = k;

      omega = 1.0 / (gamma - omega / (4.0 * alpha * alpha));
      const int ept = g - j + 1;  // precond/update extension
      eng.precond_batch(comm, kind, r, rp, ept);
      std::fill(ca.begin(), ca.begin() + ctl.cur_nb, static_cast<T>(omega));
      std::fill(cb.begin(), cb.begin() + ctl.cur_nb,
                static_cast<T>(gamma * omega - 1.0));
      std::fill(cc.begin(), cc.begin() + ctl.cur_nb, static_cast<T>(1.0));
      eng.update_batch(comm, ca.data(), rp, cb.data(), dx, cc.data(), *xw,
                       ctl.active.data(), ctl.n_active, ept);
      eng.residual_batch(comm, *bw, *xw, r, ept - 1);
    }
    const int k_last = k - 1;

    if (k_last % opt_.check_frequency == 0) {
      // r's interior IS the lockstep residual; one vector allreduce of
      // the per-member masked norms, as in the depth-1 check.
      a.local_dot_batch(comm, r, r, sums.data());
      bad_idx.clear();
      if (allreduce_sum_guarded(comm, opt_.integrity,
                                std::span<double>(sums.data(), ctl.cur_nb),
                                &bad_idx)) {
        for (int i : bad_idx) {
          if (!ctl.active[i]) continue;
          ctl.needs_stamp[ctl.member_of[i]] = 1;
          ctl.freeze(i, false, 0.0, FailureKind::kCorruptReduction);
        }
        if (ctl.n_active == 0) break;
      }
      accept_s.assign(ctl.cur_nb, 0);
      audit.assign(ctl.cur_nb, FailureKind::kNone);
      for (int s = 0; s < ctl.cur_nb; ++s)
        if (ctl.active[s] && sums[s] <= ctl.threshold2[ctl.member_of[s]])
          accept_s[s] = 1;
      if constexpr (std::is_same_v<T, double>) {
        if (opt_.integrity.any_solver_check())
          auditor.at_check(comm, halo, a, *bw, r, *xw, ctl.b_norm2.data(),
                           ctl.member_of.data(), ctl.active.data(),
                           ctl.cur_nb, nullptr, /*r_is_true=*/true,
                           accept_s.data(), /*any_accept=*/false,
                           audit.data());
      }
      for (int s = 0; s < ctl.cur_nb; ++s) {
        if (!ctl.active[s]) continue;
        const int mm = ctl.member_of[s];
        if (audit[s] != FailureKind::kNone) {
          ctl.needs_stamp[mm] = 1;
          ctl.freeze(s, false, 0.0, audit[s]);
          continue;
        }
        const double rel = std::sqrt(sums[s] / ctl.b_norm2[mm]);
        if (accept_s[s]) {
          ctl.freeze(s, true, rel, FailureKind::kNone);
          continue;
        }
        const FailureKind f = ctl.guards[mm].check(rel);
        if (f != FailureKind::kNone) ctl.freeze(s, false, rel, f);
      }
      if (ctl.n_active == 0) break;
      if (should_retire(opt_, ctl)) {
        compact(ctl, comm, a, x, bw, b_own, xw, x_own, r, {&r, &dx}, {&rp},
                sums, hw);
      }
    }
  }

  finish(ctl, comm, a, x, xw, r, sums);
  ctl.out.costs = comm.costs().since(snapshot);
  return ctl.out;
}

// ---------------------------------------------------------------------------
// Batched ChronGear

BatchedChronGearSolver::BatchedChronGearSolver(const SolverOptions& options)
    : opt_(options) {}

BatchSolveStats BatchedChronGearSolver::solve(comm::Communicator& comm,
                                              const comm::HaloExchanger& halo,
                                              const DistOperator& a,
                                              Preconditioner& m,
                                              const comm::DistFieldBatch& b,
                                              comm::DistFieldBatch& x,
                                              comm::HaloFreshness x_fresh) {
  return solve_t<double>(comm, halo, a, m, b, x, x_fresh);
}

BatchSolveStats BatchedChronGearSolver::solve(comm::Communicator& comm,
                                              const comm::HaloExchanger& halo,
                                              const DistOperator& a,
                                              Preconditioner& m,
                                              const comm::DistFieldBatch32& b,
                                              comm::DistFieldBatch32& x,
                                              comm::HaloFreshness x_fresh) {
  return solve_t<float>(comm, halo, a, m, b, x, x_fresh);
}

template <typename T>
BatchSolveStats BatchedChronGearSolver::solve_t(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const DistOperator& a, Preconditioner& m,
    const comm::DistFieldBatchT<T>& b, comm::DistFieldBatchT<T>& x,
    comm::HaloFreshness x_fresh) {
  MINIPOP_REQUIRE(b.compatible_with(x), "batched chron_gear: b/x mismatch");
  const auto snapshot = comm.costs().counters();
  const int nb0 = b.nb();
  const bool ov = opt_.overlap;

  BatchControl ctl = init_control(opt_, comm, a, b, x);
  if (ctl.n_active == 0) {
    ctl.out.costs = comm.costs().since(snapshot);
    return ctl.out;
  }

  const comm::DistFieldBatchT<T>* bw = &b;
  comm::DistFieldBatchT<T>* xw = &x;
  std::unique_ptr<comm::DistFieldBatchT<T>> b_own, x_own;
  comm::DistFieldBatchT<T> r(a.decomposition(), a.rank(), nb0, x.halo());
  comm::DistFieldBatchT<T> rp(a.decomposition(), a.rank(), nb0, x.halo());
  comm::DistFieldBatchT<T> z(a.decomposition(), a.rank(), nb0, x.halo());
  // s and p start at zero — the constructors zero-fill, matching the
  // scalar fill_interior(s/p, 0).
  comm::DistFieldBatchT<T> s_dir(a.decomposition(), a.rank(), nb0, x.halo());
  comm::DistFieldBatchT<T> p_dir(a.decomposition(), a.rank(), nb0, x.halo());

  if (ov)
    a.residual_overlapped_batch(comm, halo, *bw, *xw, r, x_fresh);
  else
    a.residual_batch(comm, halo, *bw, *xw, r, x_fresh);

  // Per-member recurrence scalars, indexed by ORIGINAL member id so
  // they survive retirement compactions. Double at every storage
  // precision (the dot reductions arrive as doubles).
  std::vector<double> rho_old(nb0, 1.0);
  std::vector<double> sigma_old(nb0, 0.0);

  std::vector<T> ca(nb0), cb(nb0), cc(nb0), cneg(nb0);
  std::vector<double> sums(nb0);
  std::vector<double> red(3 * static_cast<std::size_t>(nb0));
  std::vector<int> bad_idx;
  std::vector<unsigned char> accept_s(nb0);
  std::vector<FailureKind> audit(nb0);
  BatchIntegrityAuditor auditor(opt_);

  for (int k = 1; k <= opt_.max_iterations; ++k) {
    ctl.out.iterations = k;
    for (int s = 0; s < ctl.cur_nb; ++s)
      if (ctl.active[s]) ctl.out.members[ctl.member_of[s]].iterations = k;

    m.apply_batch(comm, r, rp);
    if (ov)
      a.apply_overlapped_batch(comm, halo, rp, z);
    else
      a.apply_batch(comm, halo, rp, z);

    // All members' fused {rho, delta[, ||r||²]} partial sums ride ONE
    // grouped vector allreduce. Element-wise fixed-order combination
    // makes each member's scalars bit-equal to its scalar solve's.
    const bool check = (k % opt_.check_frequency == 0);
    a.local_dot3_batch(comm, r, rp, z, check, red.data());
    bad_idx.clear();
    if (allreduce_sum_guarded(
            comm, opt_.integrity,
            std::span<double>(red.data(),
                              static_cast<std::size_t>(check ? 3 : 2) *
                                  ctl.cur_nb),
            &bad_idx)) {
      // A mismatched slot poisons that member's rho/delta/norm: freeze
      // it with a typed failure (residual stamped later from its frozen
      // r plane, which reduction corruption does not touch).
      for (int i : bad_idx) {
        const int s = i % ctl.cur_nb;
        if (!ctl.active[s]) continue;
        ctl.needs_stamp[ctl.member_of[s]] = 1;
        ctl.freeze(s, false, 0.0, FailureKind::kCorruptReduction);
      }
      if (ctl.n_active == 0) break;
    }

    if (check) {
      accept_s.assign(ctl.cur_nb, 0);
      audit.assign(ctl.cur_nb, FailureKind::kNone);
      bool any_accept = false;
      for (int s = 0; s < ctl.cur_nb; ++s) {
        if (!ctl.active[s]) continue;
        if (red[2 * ctl.cur_nb + s] <= ctl.threshold2[ctl.member_of[s]]) {
          accept_s[s] = 1;
          any_accept = true;
        }
      }
      if constexpr (std::is_same_v<T, double>) {
        // ChronGear's r is a recurrence: audit both the operator (ABFT)
        // and recurrence-vs-true-residual drift — always before an
        // accepting check turns a recurrence claim into "converged".
        if (opt_.integrity.any_solver_check())
          auditor.at_check(comm, halo, a, *bw, r, *xw, ctl.b_norm2.data(),
                           ctl.member_of.data(), ctl.active.data(),
                           ctl.cur_nb, red.data() + 2 * ctl.cur_nb,
                           /*r_is_true=*/false, accept_s.data(), any_accept,
                           audit.data());
      }
      for (int s = 0; s < ctl.cur_nb; ++s) {
        if (!ctl.active[s]) continue;
        const int mm = ctl.member_of[s];
        if (audit[s] != FailureKind::kNone) {
          ctl.needs_stamp[mm] = 1;
          ctl.freeze(s, false, 0.0, audit[s]);
          continue;
        }
        const double r_norm2 = red[2 * ctl.cur_nb + s];
        const double rel = std::sqrt(r_norm2 / ctl.b_norm2[mm]);
        if (accept_s[s]) {
          ctl.freeze(s, true, rel, FailureKind::kNone);
          continue;
        }
        const FailureKind f = ctl.guards[mm].check(rel);
        if (f != FailureKind::kNone) ctl.freeze(s, false, rel, f);
      }
      if (ctl.n_active == 0) break;
    }

    // Steps 10-12 per still-active member; rho/sigma pathologies freeze
    // the member where the scalar solver aborts its solve.
    for (int s = 0; s < ctl.cur_nb; ++s) {
      if (!ctl.active[s]) continue;
      const int mm = ctl.member_of[s];
      const double rho = red[s];
      const double delta = red[ctl.cur_nb + s];
      const double beta = rho / rho_old[mm];
      const double sigma = delta - beta * beta * sigma_old[mm];
      if (!ConvergenceGuard::finite(rho) ||
          !ConvergenceGuard::finite(sigma)) {
        ctl.needs_stamp[mm] = 1;
        ctl.freeze(s, false, 0.0, FailureKind::kNanDetected);
        continue;
      }
      if (sigma == 0.0) {
        ctl.needs_stamp[mm] = 1;
        ctl.freeze(s, false, 0.0, FailureKind::kBreakdown);
        continue;
      }
      const double alpha = rho / sigma;
      ca[s] = static_cast<T>(1.0);
      cb[s] = static_cast<T>(beta);
      cc[s] = static_cast<T>(alpha);
      cneg[s] = static_cast<T>(-alpha);
      rho_old[mm] = rho;
      sigma_old[mm] = sigma;
    }
    if (ctl.n_active == 0) break;

    // Steps 13-16, fused pairwise as in the scalar solver; frozen lanes
    // masked out so their x and r planes stay exactly at freeze state.
    lincomb_axpy_active(comm, ca.data(), rp, cb.data(), s_dir, cc.data(),
                        *xw, ctl.active, ctl.n_active, a.span_plan());
    lincomb_axpy_active(comm, ca.data(), z, cb.data(), p_dir, cneg.data(),
                        r, ctl.active, ctl.n_active, a.span_plan());

    if (check && should_retire(opt_, ctl)) {
      compact(ctl, comm, a, x, bw, b_own, xw, x_own, r,
              {&r, &s_dir, &p_dir}, {&rp, &z}, sums, x.halo());
    }
  }

  finish(ctl, comm, a, x, xw, r, sums);
  ctl.out.costs = comm.costs().since(snapshot);
  return ctl.out;
}

}  // namespace minipop::solver
