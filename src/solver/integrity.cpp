#include "src/solver/integrity.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/fault/fault_injector.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

void GuardedReduction::post(comm::Communicator& comm,
                            const IntegrityOptions& integrity,
                            std::span<double> values) {
  MINIPOP_REQUIRE(comm_ == nullptr, "GuardedReduction reposted before wait");
  comm_ = &comm;
  values_ = values;
  guarded_ = integrity.guarded_reductions;
  if (!guarded_) {
    // The fault hook arms either way: with the guard off an injected
    // contribution corruption flows into the reduced value undetected —
    // the vulnerability the guard exists to close.
    fault::hook_reduction_corrupt(comm.rank(), values.data(),
                                  values.size());
    req_ = comm.iallreduce(values, comm::ReduceOp::kSum);
    return;
  }
  const std::size_t n = values.size();
  dup_.resize(2 * n);
  std::copy(values.begin(), values.end(), dup_.begin());
  std::copy(values.begin(), values.end(),
            dup_.begin() + static_cast<std::ptrdiff_t>(n));
  // Corrupt only the primary half: the duplicate is the reference the
  // cross-check compares against.
  fault::hook_reduction_corrupt(comm.rank(), dup_.data(), n);
  req_ = comm.iallreduce(std::span<double>(dup_), comm::ReduceOp::kSum);
}

bool GuardedReduction::wait(std::vector<int>* bad) {
  MINIPOP_REQUIRE(comm_ != nullptr, "GuardedReduction waited without post");
  comm::Communicator& comm = *comm_;
  comm_ = nullptr;
  req_.wait();
  if (!guarded_) return false;
  const std::size_t n = values_.size();
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    // Bitwise, not ==: the halves of a healthy reduction combine the
    // same addends in the same fixed rank order and are exactly equal,
    // and memcmp still trips when corruption breeds a NaN.
    if (std::memcmp(&dup_[i], &dup_[n + i], sizeof(double)) != 0) {
      any = true;
      if (bad) bad->push_back(static_cast<int>(i));
    }
    values_[i] = dup_[i];
  }
  comm.costs().add_integrity_check(any);
  return any;
}

bool allreduce_sum_guarded(comm::Communicator& comm,
                           const IntegrityOptions& integrity,
                           std::span<double> values, std::vector<int>* bad) {
  GuardedReduction red;
  red.post(comm, integrity, values);
  return red.wait(bad);
}

bool abft_mismatch(const IntegrityOptions& integrity, double sum_b,
                   double sum_r, double dot_cx, double n_ocean,
                   double b_norm2) {
  const double gap = (sum_b - sum_r) - dot_cx;
  const double scale = std::sqrt(n_ocean * b_norm2) + std::abs(dot_cx);
  // Negated <= so a NaN/Inf gap (flipped exponent bits) is a mismatch.
  return !(std::abs(gap) <= integrity.abft_tolerance * scale);
}

bool drift_mismatch(const IntegrityOptions& integrity, double rel_true,
                    double rel_recurrence) {
  const double gap = std::abs(rel_true - rel_recurrence);
  return !(gap <= integrity.drift_tolerance * (1.0 + rel_recurrence));
}

FailureKind IntegrityAuditor::at_check(comm::Communicator& comm,
                                       const comm::HaloExchanger& halo,
                                       const DistOperator& a,
                                       const comm::DistField& b,
                                       const comm::DistField& r,
                                       comm::DistField& x, double b_norm2,
                                       double r_norm2, bool r_is_true,
                                       bool accepting) {
  ++checks_;
  const bool abft_due =
      integrity_.abft_interval > 0 &&
      checks_ % integrity_.abft_interval == 0;
  const bool drift_due =
      !r_is_true && integrity_.true_residual_interval > 0 &&
      (accepting || checks_ % integrity_.true_residual_interval == 0);

  if (abft_due) {
    double sums[4];
    a.abft_local_sums(comm, b, r, x, sums);
    // Piggyback the global ocean-cell count on the audit reduction (an
    // extra slot instead of an extra collective).
    sums[3] = static_cast<double>(a.local_ocean_cells());
    if (allreduce_sum_guarded(comm, integrity_, std::span<double>(sums)))
      return FailureKind::kCorruptReduction;
    const bool bad =
        abft_mismatch(integrity_, sums[0], sums[1], sums[2], sums[3],
                      b_norm2);
    comm.costs().add_integrity_check(bad);
    if (bad) return FailureKind::kCorruptOperator;
  }

  if (drift_due) {
    if (!scratch_)
      scratch_ = std::make_unique<comm::DistField>(a.decomposition(),
                                                   a.rank(), x.halo());
    // One residual sweep (with halo refresh of x) into scratch; the
    // solve's own fields are not touched.
    double local = a.residual_local_norm2(comm, halo, b, x, *scratch_);
    if (allreduce_sum_guarded(comm, integrity_,
                              std::span<double>(&local, 1)))
      return FailureKind::kCorruptReduction;
    const double rel_true = std::sqrt(local / b_norm2);
    const double rel_rec = std::sqrt(r_norm2 / b_norm2);
    const bool bad = drift_mismatch(integrity_, rel_true, rel_rec);
    comm.costs().add_integrity_check(bad);
    if (bad) return FailureKind::kSilentDrift;
  }

  return FailureKind::kNone;
}

void BatchIntegrityAuditor::at_check(
    comm::Communicator& comm, const comm::HaloExchanger& halo,
    const DistOperator& a, const comm::DistFieldBatch& b,
    const comm::DistFieldBatch& r, comm::DistFieldBatch& x,
    const double* b_norm2_by_member, const int* member_of,
    const unsigned char* active, int cur_nb, const double* r_norm2,
    bool r_is_true, const unsigned char* accept, bool any_accept,
    FailureKind* fail) {
  ++checks_;
  const std::size_t nb = static_cast<std::size_t>(cur_nb);
  const bool abft_due =
      integrity_.abft_interval > 0 &&
      checks_ % integrity_.abft_interval == 0;
  const bool drift_cadence =
      !r_is_true && integrity_.true_residual_interval > 0 &&
      checks_ % integrity_.true_residual_interval == 0;
  const bool drift_due = !r_is_true &&
                         integrity_.true_residual_interval > 0 &&
                         (any_accept || drift_cadence);

  std::vector<int> bad;
  if (abft_due) {
    abft_sums_.resize(3 * nb + 1);
    a.abft_local_sums_batch(comm, b, r, x, abft_sums_.data());
    abft_sums_[3 * nb] = static_cast<double>(a.local_ocean_cells());
    bad.clear();
    if (allreduce_sum_guarded(comm, integrity_,
                              std::span<double>(abft_sums_), &bad)) {
      for (int i : bad) {
        if (i < 3 * cur_nb)
          fail[i % cur_nb] = FailureKind::kCorruptReduction;
        else  // a corrupt ocean-cell slot poisons every verdict
          for (int s = 0; s < cur_nb; ++s)
            fail[s] = FailureKind::kCorruptReduction;
      }
    } else {
      const double n_ocean = abft_sums_[3 * nb];
      for (int s = 0; s < cur_nb; ++s) {
        if (!active[s] || fail[s] != FailureKind::kNone) continue;
        const bool bad_s = abft_mismatch(
            integrity_, abft_sums_[static_cast<std::size_t>(s)],
            abft_sums_[nb + static_cast<std::size_t>(s)],
            abft_sums_[2 * nb + static_cast<std::size_t>(s)], n_ocean,
            b_norm2_by_member[member_of[s]]);
        comm.costs().add_integrity_check(bad_s);
        if (bad_s) fail[s] = FailureKind::kCorruptOperator;
      }
    }
  }

  if (drift_due) {
    // Scratch allocated per audit: the batch width shrinks across
    // retirements, and audits are rare (cadence-gated).
    comm::DistFieldBatch scratch(a.decomposition(), a.rank(), cur_nb,
                                 x.halo());
    true_sums_.resize(nb);
    a.residual_local_norm2_batch(comm, halo, b, x, scratch,
                                 true_sums_.data());
    bad.clear();
    if (allreduce_sum_guarded(comm, integrity_,
                              std::span<double>(true_sums_.data(), nb),
                              &bad)) {
      for (int i : bad) fail[i] = FailureKind::kCorruptReduction;
    } else {
      for (int s = 0; s < cur_nb; ++s) {
        if (!active[s] || fail[s] != FailureKind::kNone) continue;
        if (!(accept[s] || drift_cadence)) continue;
        const int mm = member_of[s];
        const double rel_true =
            std::sqrt(true_sums_[static_cast<std::size_t>(s)] /
                      b_norm2_by_member[mm]);
        const double rel_rec = std::sqrt(r_norm2[s] / b_norm2_by_member[mm]);
        const bool bad_s = drift_mismatch(integrity_, rel_true, rel_rec);
        comm.costs().add_integrity_check(bad_s);
        if (bad_s) fail[s] = FailureKind::kSilentDrift;
      }
    }
  }
}

}  // namespace minipop::solver
