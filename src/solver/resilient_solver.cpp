#include "src/solver/resilient_solver.hpp"

#include <cmath>
#include <span>
#include <utility>

#include "src/solver/field_ops.hpp"
#include "src/solver/mixed_precision.hpp"
#include "src/solver/pcsi.hpp"
#include "src/solver/preconditioner.hpp"
#include "src/util/error.hpp"
#include "src/util/log.hpp"

namespace minipop::solver {

namespace {

void zero_nonfinite(comm::DistField& v) {
  for (int lb = 0; lb < v.num_local_blocks(); ++lb) {
    const auto& info = v.info(lb);
    double* p = v.interior(lb);
    const std::ptrdiff_t stride = v.stride(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        if (!std::isfinite(p[j * stride + i])) p[j * stride + i] = 0.0;
  }
}

}  // namespace

ResilientSolver::ResilientSolver(std::unique_ptr<IterativeSolver> primary,
                                 RecoveryPolicy policy)
    : policy_(policy) {
  MINIPOP_REQUIRE(primary != nullptr, "resilient solver needs a primary");
  chain_.push_back(Stage{std::move(primary), false});
}

void ResilientSolver::add_fallback(std::unique_ptr<IterativeSolver> solver,
                                   bool use_diagonal_precond) {
  MINIPOP_REQUIRE(solver != nullptr, "null fallback solver");
  chain_.push_back(Stage{std::move(solver), use_diagonal_precond});
}

std::string ResilientSolver::name() const {
  return "resilient(" + chain_.front().solver->name() + ")";
}

void ResilientSolver::checkpoint(const comm::DistField& x) {
  // Drop snapshots from a different problem shape before reusing the ring.
  while (!ring_.empty() && !ring_.front().compatible_with(x)) ring_.clear();
  comm::DistField snap(x.decomposition(), x.rank(), x.halo());
  copy_interior(x, snap);
  ring_.push_front(std::move(snap));
  while (ring_.size() > 2) ring_.pop_back();
}

void ResilientSolver::restore(comm::DistField& x, std::size_t slot) const {
  MINIPOP_REQUIRE(!ring_.empty(), "restore without a checkpoint");
  if (slot >= ring_.size()) slot = ring_.size() - 1;
  copy_interior(ring_[slot], x);
  zero_nonfinite(x);
}

SolveStats ResilientSolver::solve(comm::Communicator& comm,
                                  const comm::HaloExchanger& halo,
                                  const DistOperator& a, Preconditioner& m,
                                  const comm::DistField& b,
                                  comm::DistField& x,
                                  comm::HaloFreshness x_fresh) {
  const auto snapshot = comm.costs().counters();
  checkpoint(x);

  // A previous solve's precision escalation does not outlive it: each
  // solve gets a fresh shot at the fast fp32/mixed path.
  auto* mixed = dynamic_cast<MixedPrecisionSolver*>(chain_.front().solver.get());
  if (mixed) mixed->set_forced_fp64(false);

  std::size_t stage = 0;
  int restarts_used = 0;
  bool bounds_reestimated = false;
  bool operator_repaired = false;
  int total_iterations = 0;
  comm::HaloFreshness fresh = x_fresh;

  for (int attempt = 0;; ++attempt) {
    SolveStats stats;
    FailureKind observed;
    bool comm_broken = false;
    try {
      stats = chain_[stage].use_diagonal_precond
                  ? [&] {
                      DiagonalPreconditioner diag(a);
                      return chain_[stage].solver->solve(comm, halo, a, diag,
                                                         b, x, fresh);
                    }()
                  : chain_[stage].solver->solve(comm, halo, a, m, b, x,
                                                fresh);
      observed = stats.converged ? FailureKind::kNone : stats.failure;
    } catch (const comm::CommTimeoutError&) {
      observed = FailureKind::kCommTimeout;
      comm_broken = true;
    } catch (const comm::CorruptPayloadError&) {
      // A halo message failed its CRC. The thrower already called
      // declare_desync(), so peers funnel into the resync fence below;
      // the typed code survives the post-resync agreement (kMax picks
      // it over the peers' kCommTimeout).
      observed = FailureKind::kCorruptPayload;
      comm_broken = true;
    }

    // Agreement: one kMax reduction of the failure code so every rank
    // takes the same branch. All in-solve failure verdicts come from
    // already-reduced scalars, so in practice the codes agree; the
    // reduction makes that a guarantee (and is the only collective this
    // decorator adds to a fault-free solve). If a peer timed out, this
    // very reduction throws and routes us to the resync fence too.
    double code = static_cast<double>(static_cast<int>(observed));
    if (!comm_broken) {
      try {
        comm.allreduce(std::span<double>(&code, 1), comm::ReduceOp::kMax);
      } catch (const comm::CommTimeoutError&) {
        comm_broken = true;
      }
    }
    if (comm_broken) {
      // Collective fence: every rank funnels here (its solve or its
      // agreement reduction throws), clearing the failed epoch. The
      // re-agreement carries each rank's OBSERVED code — a CRC
      // detector's kCorruptPayload outranks its peers' kCommTimeout —
      // so the recorded failure names the root cause, not the symptom.
      comm.resync();
      if (!needs_resync(observed)) observed = FailureKind::kCommTimeout;
      code = static_cast<double>(static_cast<int>(observed));
      comm.allreduce(std::span<double>(&code, 1), comm::ReduceOp::kMax);
    }
    const FailureKind agreed = static_cast<FailureKind>(
        static_cast<int>(code));

    total_iterations += stats.iterations;
    if (agreed == FailureKind::kNone) {
      stats.iterations = total_iterations;
      stats.failure = FailureKind::kNone;
      stats.costs = comm.costs().since(snapshot);
      return stats;
    }

    // --- recovery decision (identical on every rank) ---
    RecoveryEvent ev;
    ev.failure = agreed;
    ev.solver = chain_[stage].solver->name();
    ev.attempt = attempt;
    ev.iterations = stats.iterations;

    // A corrupted operator is repaired in place, once per solve: the
    // coefficient planes are re-copied from the pristine stencil (the
    // ABFT reference rebuilds with them), then the solve restarts from
    // the checkpoint. No other rung can cure bad coefficients — every
    // retry would re-run the same wrong operator.
    if (agreed == FailureKind::kCorruptOperator && !operator_repaired) {
      ev.action = "repair_operator";
      events_.push_back(ev);
      a.repair_coefficients();
      operator_repaired = true;
      restore(x, 0);
      fresh = comm::HaloFreshness::kStale;
      continue;
    }

    // Reduced-precision arithmetic is the cheapest thing to rule out:
    // retry once with the fp64 twin before spending restarts, Lanczos
    // re-estimation or solver swaps. Not for comm-layer failures
    // (timeouts, corrupt payloads) — precision cannot fix a lost or
    // mangled message.
    if (stage == 0 && mixed && !mixed->forced_fp64() &&
        mixed->precision() != Precision::kFp64 && !needs_resync(agreed)) {
      ev.action = "escalate_precision";
      events_.push_back(ev);
      mixed->set_forced_fp64(true);
      restore(x, 0);
      fresh = comm::HaloFreshness::kStale;
      continue;
    }

    if (stage == 0 && policy_.reestimate_bounds && !bounds_reestimated &&
        (agreed == FailureKind::kDiverged ||
         agreed == FailureKind::kStagnated)) {
      PcsiSolver* pcsi = dynamic_cast<PcsiSolver*>(chain_[0].solver.get());
      if (!pcsi && mixed) pcsi = mixed->pcsi();
      if (pcsi) {
        // A diverging P-CSI usually means the Chebyshev interval no
        // longer brackets the spectrum; measure it again (collective).
        // Lanczos itself can fail here — a corrupted operator may not
        // even be SPD any more — and that must burn the rung, not
        // escape the recovery chain. Its requirement checks fire on
        // globally-reduced values, so every rank throws (or not)
        // together; comm-layer exceptions keep propagating as before.
        bool reestimated = false;
        try {
          const LanczosResult lr =
              estimate_eigenvalue_bounds(comm, halo, a, m, policy_.lanczos);
          pcsi->set_bounds(lr.bounds);
          reestimated = true;
        } catch (const comm::CommTimeoutError&) {
          throw;
        } catch (const comm::CorruptPayloadError&) {
          throw;
        } catch (const util::Error&) {
          reestimated = false;
        }
        bounds_reestimated = true;
        if (reestimated) {
          ev.action = "reestimate_bounds";
          events_.push_back(ev);
          restore(x, 0);
          fresh = comm::HaloFreshness::kStale;
          continue;
        }
        // fall through to restart / fallback with the bounds unchanged
      }
    }

    if (stage == 0 && restarts_used < policy_.max_restarts) {
      // Restart 1 retries from this solve's entry state; restart 2 falls
      // back to the previous solve's (the older ring slot).
      ev.action = "restart";
      events_.push_back(ev);
      restore(x, static_cast<std::size_t>(restarts_used));
      ++restarts_used;
      fresh = comm::HaloFreshness::kStale;
      continue;
    }

    if (policy_.fallback && stage + 1 < chain_.size()) {
      ev.action = "fallback";
      events_.push_back(ev);
      ++stage;
      restore(x, 0);
      fresh = comm::HaloFreshness::kStale;
      continue;
    }

    // Out of options: hand the typed failure to the caller.
    ev.action = "give_up";
    events_.push_back(ev);
    if (comm.rank() == 0)
      MINIPOP_WARN("resilient solver giving up: "
                   << to_string(agreed) << " after " << (attempt + 1)
                   << " attempt(s), " << total_iterations << " iterations");
    stats.converged = false;
    stats.failure = agreed;
    stats.iterations = total_iterations;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
}

}  // namespace minipop::solver
