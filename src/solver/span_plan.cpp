#include "src/solver/span_plan.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace minipop::solver {

BlockSpans::BlockSpans(const unsigned char* mask, std::ptrdiff_t mask_stride,
                       int nx, int ny)
    : nx_(nx), ny_(ny) {
  MINIPOP_REQUIRE(nx >= 0 && ny >= 0,
                  "span plan extent " << nx << "x" << ny);
  row_offset_.resize(static_cast<size_t>(ny) + 1, 0);
  for (int j = 0; j < ny; ++j) {
    row_offset_[j] = static_cast<int>(spans_.size());
    const unsigned char* mrow = mask + j * mask_stride;
    int i = 0;
    while (i < nx) {
      while (i < nx && !mrow[i]) ++i;
      if (i == nx) break;
      const int i0 = i;
      while (i < nx && mrow[i]) ++i;
      spans_.push_back(kernels::Span{i0, i - i0});
      active_points_ += i - i0;
    }
  }
  row_offset_[ny] = static_cast<int>(spans_.size());
}

BlockSpans BlockSpans::clipped(int i0, int j0, int ni, int nj) const {
  MINIPOP_REQUIRE(i0 >= 0 && j0 >= 0 && ni >= 0 && nj >= 0 &&
                      i0 + ni <= nx_ && j0 + nj <= ny_,
                  "clip rect (" << i0 << "," << j0 << ")+" << ni << "x"
                                << nj << " outside " << nx_ << "x" << ny_);
  BlockSpans out;
  out.nx_ = ni;
  out.ny_ = nj;
  out.row_offset_.resize(static_cast<size_t>(nj) + 1, 0);
  for (int j = 0; j < nj; ++j) {
    out.row_offset_[j] = static_cast<int>(out.spans_.size());
    const int sj = j0 + j;
    for (int s = row_offset_[sj]; s < row_offset_[sj + 1]; ++s) {
      // Intersect span [a, b) with the clip window [i0, i0+ni).
      const int a = std::max(spans_[s].i0, i0);
      const int b = std::min(spans_[s].i0 + spans_[s].len, i0 + ni);
      if (a >= b) continue;
      out.spans_.push_back(kernels::Span{a - i0, b - a});
      out.active_points_ += b - a;
    }
  }
  out.row_offset_[nj] = static_cast<int>(out.spans_.size());
  return out;
}

void BlockSpans::validate(const unsigned char* mask,
                          std::ptrdiff_t mask_stride) const {
  long active = 0;
  for (int j = 0; j < ny_; ++j) {
    const unsigned char* mrow = mask + j * mask_stride;
    int prev_end = 0;  // spans must be sorted and non-overlapping
    for (int s = row_offset_[j]; s < row_offset_[j + 1]; ++s) {
      const kernels::Span sp = spans_[s];
      MINIPOP_REQUIRE(sp.len > 0 && sp.i0 >= prev_end &&
                          sp.i0 + sp.len <= nx_,
                      "malformed span [" << sp.i0 << ", +" << sp.len
                                         << ") in row " << j);
      // Gap before the span must be land, the span itself all ocean.
      for (int i = prev_end; i < sp.i0; ++i)
        MINIPOP_REQUIRE(!mrow[i], "span plan misses ocean cell (" << i
                                                                  << "," << j
                                                                  << ")");
      for (int i = sp.i0; i < sp.i0 + sp.len; ++i)
        MINIPOP_REQUIRE(mrow[i], "span plan covers land cell (" << i << ","
                                                                << j << ")");
      prev_end = sp.i0 + sp.len;
      active += sp.len;
    }
    for (int i = prev_end; i < nx_; ++i)
      MINIPOP_REQUIRE(!mrow[i], "span plan misses ocean cell (" << i << ","
                                                                << j << ")");
  }
  MINIPOP_REQUIRE(active == active_points_,
                  "active_points " << active_points_ << " != mask count "
                                   << active);
}

}  // namespace minipop::solver
