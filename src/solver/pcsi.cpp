#include "src/solver/pcsi.hpp"

#include <algorithm>
#include <cmath>

#include "src/fault/fault_injector.hpp"
#include "src/solver/comm_avoid.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/integrity.hpp"
#include "src/solver/kernels.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

namespace {

/// Interior copy between fields of DIFFERENT halo widths (the
/// comm-avoiding path works on deep-halo copies of the caller's
/// fields; field_ops::copy_interior requires matching halos).
void copy_interior_any(const comm::DistField& src, comm::DistField& dst) {
  for (int lb = 0; lb < src.num_local_blocks(); ++lb) {
    const auto& info = src.info(lb);
    kernels::copy(info.nx, info.ny, src.interior(lb), src.stride(lb),
                  dst.interior(lb), dst.stride(lb));
  }
}

}  // namespace

PcsiSolver::PcsiSolver(EigenBounds bounds, const SolverOptions& options)
    : opt_(options) {
  set_bounds(bounds);
}

PcsiSolver::~PcsiSolver() = default;

void PcsiSolver::set_bounds(EigenBounds bounds) {
  MINIPOP_REQUIRE(bounds.nu > 0.0 && bounds.mu > bounds.nu,
                  "invalid eigenvalue interval [" << bounds.nu << ", "
                                                  << bounds.mu << "]");
  bounds_ = bounds;
}

SolveStats PcsiSolver::solve(comm::Communicator& comm,
                             const comm::HaloExchanger& halo,
                             const DistOperator& a, Preconditioner& m,
                             const comm::DistField& b, comm::DistField& x,
                             comm::HaloFreshness x_fresh) {
  // Depth-k grouped sweeps only extend through POINTWISE preconditioners
  // (a ghost cell's M^-1 r depends only on that cell); the factory
  // already falls back loudly for block-EVP, this guards direct use.
  if (opt_.halo_depth > 1 &&
      (m.name() == "diagonal" || m.name() == "identity"))
    return solve_comm_avoid(comm, halo, a, m, b, x, x_fresh);
  if (opt_.overlap) return solve_overlapped(comm, halo, a, m, b, x, x_fresh);
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  comm::DistField r(a.decomposition(), a.rank(), x.halo());
  comm::DistField rp(a.decomposition(), a.rank(), x.halo());
  comm::DistField dx(a.decomposition(), a.rank(), x.halo());

  const double b_norm2 = a.global_dot(comm, b, b);
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  // Algorithm 2, step 1: Chebyshev constants from [nu, mu]. The fault
  // hook corrupts a local copy of the interval — a stale or wrong
  // estimate enters here exactly as a bad Lanczos result would, below
  // set_bounds' validation.
  EigenBounds eb = bounds_;
  fault::hook_eigen_bounds(a.rank(), &eb.nu, &eb.mu);
  const double alpha = 2.0 / (eb.mu - eb.nu);
  const double beta = (eb.mu + eb.nu) / (eb.mu - eb.nu);
  const double gamma = beta / alpha;
  double omega = 2.0 / gamma;  // omega_0

  // Step 2: initial step.
  a.residual(comm, halo, b, x, r, x_fresh);  // r_0 = b - B x_0
  m.apply(comm, r, rp);
  copy_interior(rp, dx);
  scale(comm, 1.0 / gamma, dx, a.span_plan());         // dx_0 = gamma^-1 M^-1 r_0
  axpy(comm, 1.0, dx, x, a.span_plan());               // x_1 = x_0 + dx_0
  a.residual(comm, halo, b, x, r);      // r_1 = b - B x_1

  ConvergenceGuard guard(opt_);
  IntegrityAuditor auditor(opt_);
  for (int k = 1; k <= opt_.max_iterations; ++k) {
    stats.iterations = k;

    // Step 5: omega_k = 1 / (gamma - omega_{k-1} / (4 alpha^2)).
    omega = 1.0 / (gamma - omega / (4.0 * alpha * alpha));

    m.apply(comm, r, rp);                            // step 6
    // Steps 7-8 fused into one sweep: dx = omega rp + (gamma omega - 1) dx,
    // then x += dx.
    lincomb_axpy(comm, omega, rp, gamma * omega - 1.0, dx, 1.0, x,
                 a.span_plan());

    // Steps 9-11. On check iterations the residual sweep also produces
    // the masked ||r||² (fused kernel), so the convergence check — the
    // only global reduction P-CSI does — costs zero extra field passes.
    if (k % opt_.check_frequency == 0) {
      double r_norm2 = a.residual_local_norm2(comm, halo, b, x, r);
      if (allreduce_sum_guarded(comm, opt_.integrity,
                                std::span<double>(&r_norm2, 1))) {
        stats.failure = FailureKind::kCorruptReduction;
        break;
      }
      const double rel = std::sqrt(r_norm2 / b_norm2);
      if (opt_.record_residuals) stats.residual_history.emplace_back(k, rel);
      const bool accept = r_norm2 <= threshold2;
      if (opt_.integrity.any_solver_check()) {
        // P-CSI's r IS the true residual (r_is_true), so only the ABFT
        // operator audit applies; run it before accepting convergence.
        stats.failure = auditor.at_check(comm, halo, a, b, r, x, b_norm2,
                                         r_norm2, /*r_is_true=*/true,
                                         accept);
        if (stats.failure != FailureKind::kNone) break;
      }
      if (accept) {
        stats.converged = true;
        stats.relative_residual = rel;
        break;
      }
      stats.failure = guard.check(rel);
      if (stats.failure != FailureKind::kNone) break;
    } else {
      a.residual(comm, halo, b, x, r);
    }
  }

  if (!stats.converged) {
    if (stats.failure == FailureKind::kNone)
      stats.failure = FailureKind::kMaxIters;
    stats.relative_residual =
        std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

// Split-phase P-CSI. The iteration body has no reduction at all — the
// paper's whole point — so the engine hides (a) every halo exchange
// behind the interior sweep, (b) <b, b> behind the initial residual, and
// (c) the periodic check norm behind the NEXT iteration's
// preconditioner apply: once the check residual r_{k} is computed, the
// norm reduction is posted and M^-1 r_k — block-local, communication-
// free, deterministic — is evaluated speculatively while it flies. If
// the check converges, the speculative rp is discarded (its only cost
// is the extra preconditioner flops on that final iteration); otherwise
// iteration k+1 starts with rp already in hand. Iterates, iteration
// counts and residuals are bitwise identical to the blocking path.
SolveStats PcsiSolver::solve_overlapped(comm::Communicator& comm,
                                        const comm::HaloExchanger& halo,
                                        const DistOperator& a,
                                        Preconditioner& m,
                                        const comm::DistField& b,
                                        comm::DistField& x,
                                        comm::HaloFreshness x_fresh) {
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  comm::DistField r(a.decomposition(), a.rank(), x.halo());
  comm::DistField rp(a.decomposition(), a.rank(), x.halo());
  comm::DistField dx(a.decomposition(), a.rank(), x.halo());

  // <b, b> hidden behind the initial residual.
  double b_norm2 = a.local_dot(comm, b, b);
  comm::Request b_req =
      comm.iallreduce(std::span<double>(&b_norm2, 1), comm::ReduceOp::kSum);
  a.residual_overlapped(comm, halo, b, x, r, x_fresh);  // r_0 = b - B x_0
  b_req.wait();
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  EigenBounds eb = bounds_;
  fault::hook_eigen_bounds(a.rank(), &eb.nu, &eb.mu);
  const double alpha = 2.0 / (eb.mu - eb.nu);
  const double beta = (eb.mu + eb.nu) / (eb.mu - eb.nu);
  const double gamma = beta / alpha;
  double omega = 2.0 / gamma;  // omega_0

  m.apply(comm, r, rp);
  copy_interior(rp, dx);
  scale(comm, 1.0 / gamma, dx, a.span_plan());               // dx_0 = gamma^-1 M^-1 r_0
  axpy(comm, 1.0, dx, x, a.span_plan());                     // x_1 = x_0 + dx_0
  a.residual_overlapped(comm, halo, b, x, r); // r_1 = b - B x_1

  ConvergenceGuard guard(opt_);
  IntegrityAuditor auditor(opt_);
  bool have_rp = false;  // speculative M^-1 r from the previous check
  for (int k = 1; k <= opt_.max_iterations; ++k) {
    stats.iterations = k;

    omega = 1.0 / (gamma - omega / (4.0 * alpha * alpha));

    if (!have_rp) m.apply(comm, r, rp);  // step 6 (or prefetched)
    have_rp = false;
    lincomb_axpy(comm, omega, rp, gamma * omega - 1.0, dx, 1.0, x,
                 a.span_plan());

    if (k % opt_.check_frequency == 0) {
      double local =
          a.residual_local_norm2_overlapped(comm, halo, b, x, r);
      GuardedReduction norm_red;
      norm_red.post(comm, opt_.integrity, std::span<double>(&local, 1));
      // r is final whether or not the check passes; precondition it for
      // iteration k+1 while the reduction flies.
      m.apply(comm, r, rp);
      have_rp = true;
      if (norm_red.wait()) {
        stats.failure = FailureKind::kCorruptReduction;
        break;
      }
      const double r_norm2 = local;
      const double rel = std::sqrt(r_norm2 / b_norm2);
      if (opt_.record_residuals) stats.residual_history.emplace_back(k, rel);
      const bool accept = r_norm2 <= threshold2;
      if (opt_.integrity.any_solver_check()) {
        stats.failure = auditor.at_check(comm, halo, a, b, r, x, b_norm2,
                                         r_norm2, /*r_is_true=*/true,
                                         accept);
        if (stats.failure != FailureKind::kNone) break;
      }
      if (accept) {
        stats.converged = true;
        stats.relative_residual = rel;
        break;
      }
      stats.failure = guard.check(rel);
      if (stats.failure != FailureKind::kNone) break;
    } else {
      a.residual_overlapped(comm, halo, b, x, r);
    }
  }

  if (!stats.converged) {
    if (stats.failure == FailureKind::kNone)
      stats.failure = FailureKind::kMaxIters;
    stats.relative_residual =
        std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

// Communication-avoiding P-CSI (DESIGN.md §13). Between convergence
// checks the iteration is reduction-free AND — with a depth-k ghost
// zone — exchange-free: one grouped deep exchange of {x, dx, r} buys up
// to k iterations of sweeps on shrinking extended domains. Sweep j of a
// g-iteration group preconditions and updates on extension g - j + 1
// and evaluates the residual on extension g - j, so after the group the
// interior state is BITWISE what g single-exchange iterations produce
// (the ghost arithmetic replays the neighbouring owners' operations on
// identical operands — see comm_avoid.hpp). The price is redundant
// perimeter flops, recorded in CostCounters::redundant_flops.
SolveStats PcsiSolver::solve_comm_avoid(comm::Communicator& comm,
                                        const comm::HaloExchanger& halo,
                                        const DistOperator& a,
                                        Preconditioner& m,
                                        const comm::DistField& b,
                                        comm::DistField& x,
                                        comm::HaloFreshness /*x_fresh*/) {
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  const int depth = std::min(
      std::max(opt_.halo_depth, 1), a.decomposition().max_halo_width());
  const CaPrecond kind = m.name() == "diagonal" ? CaPrecond::kDiagonal
                                                : CaPrecond::kIdentity;
  if (!ca_engine_ || ca_engine_op_ != &a || ca_engine_->width() != depth) {
    ca_engine_ = std::make_unique<CommAvoidEngine>(a, depth);
    ca_engine_op_ = &a;
  }
  const CommAvoidEngine& eng = *ca_engine_;

  // Deep-halo working copies: every operand of the extended sweeps needs
  // a ghost region at least `depth` wide. (x_fresh is moot — the copies'
  // halos start stale and the first residual refreshes them; the
  // exchanged rims equal the caller's, fresh or not.)
  const int hw = std::max(x.halo(), depth);
  comm::DistField bw(a.decomposition(), a.rank(), hw);
  comm::DistField xw(a.decomposition(), a.rank(), hw);
  comm::DistField r(a.decomposition(), a.rank(), hw);
  comm::DistField rp(a.decomposition(), a.rank(), hw);
  comm::DistField dx(a.decomposition(), a.rank(), hw);
  copy_interior_any(b, bw);
  copy_interior_any(x, xw);

  const double b_norm2 = a.global_dot(comm, bw, bw);
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  EigenBounds eb = bounds_;
  fault::hook_eigen_bounds(a.rank(), &eb.nu, &eb.mu);
  const double alpha = 2.0 / (eb.mu - eb.nu);
  const double beta = (eb.mu + eb.nu) / (eb.mu - eb.nu);
  const double gamma = beta / alpha;
  double omega = 2.0 / gamma;  // omega_0

  // b's deep ghosts feed every extended residual sweep and b never
  // changes: ONE exchange per solve.
  halo.exchange(comm, bw);

  // Step 2: initial step, verbatim from the depth-1 path.
  a.residual(comm, halo, bw, xw, r);  // r_0 = b - B x_0
  m.apply(comm, r, rp);
  copy_interior(rp, dx);
  scale(comm, 1.0 / gamma, dx, a.span_plan());         // dx_0 = gamma^-1 M^-1 r_0
  axpy(comm, 1.0, dx, xw);              // x_1 = x_0 + dx_0
  a.residual(comm, halo, bw, xw, r);    // r_1 = b - B x_1

  ConvergenceGuard guard(opt_);
  IntegrityAuditor auditor(opt_);
  const comm::FieldSetT<double> group_sets[3] = {
      comm::FieldSetT<double>(xw), comm::FieldSetT<double>(dx),
      comm::FieldSetT<double>(r)};
  int k = 1;
  while (k <= opt_.max_iterations) {
    // Group boundaries align with check iterations, so the checked r is
    // always the group's final interior residual.
    const int to_check =
        opt_.check_frequency - ((k - 1) % opt_.check_frequency);
    const int remaining = opt_.max_iterations - k + 1;
    const int g = std::min({depth, to_check, remaining});

    halo.exchange_group<double>(
        comm, std::span<const comm::FieldSetT<double>>(group_sets, 3));

    for (int j = 1; j <= g; ++j, ++k) {
      stats.iterations = k;
      omega = 1.0 / (gamma - omega / (4.0 * alpha * alpha));
      const int ept = g - j + 1;           // precond/update extension
      eng.precond(comm, kind, r, rp, ept);          // step 6
      eng.update(comm, omega, rp, gamma * omega - 1.0, dx, xw,
                 ept);                               // steps 7-8
      eng.residual(comm, bw, xw, r, ept - 1);        // steps 9-11
    }
    const int k_last = k - 1;

    if (k_last % opt_.check_frequency == 0) {
      // r's interior IS the iteration's true residual; its masked norm
      // accumulates bit-identically to the depth-1 fused sweep (kernel
      // contract: residual_norm2_9 == residual9 + masked_dot).
      double r_norm2 = a.local_dot(comm, r, r);
      if (allreduce_sum_guarded(comm, opt_.integrity,
                                std::span<double>(&r_norm2, 1))) {
        stats.failure = FailureKind::kCorruptReduction;
        break;
      }
      const double rel = std::sqrt(r_norm2 / b_norm2);
      if (opt_.record_residuals)
        stats.residual_history.emplace_back(k_last, rel);
      const bool accept = r_norm2 <= threshold2;
      if (opt_.integrity.any_solver_check()) {
        stats.failure = auditor.at_check(comm, halo, a, bw, r, xw, b_norm2,
                                         r_norm2, /*r_is_true=*/true,
                                         accept);
        if (stats.failure != FailureKind::kNone) break;
      }
      if (accept) {
        stats.converged = true;
        stats.relative_residual = rel;
        break;
      }
      stats.failure = guard.check(rel);
      if (stats.failure != FailureKind::kNone) break;
    }
  }

  if (!stats.converged) {
    if (stats.failure == FailureKind::kNone)
      stats.failure = FailureKind::kMaxIters;
    stats.relative_residual =
        std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  copy_interior_any(xw, x);
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

}  // namespace minipop::solver
