#include "src/solver/pcsi.hpp"

#include <cmath>

#include "src/solver/field_ops.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

PcsiSolver::PcsiSolver(EigenBounds bounds, const SolverOptions& options)
    : opt_(options) {
  set_bounds(bounds);
}

void PcsiSolver::set_bounds(EigenBounds bounds) {
  MINIPOP_REQUIRE(bounds.nu > 0.0 && bounds.mu > bounds.nu,
                  "invalid eigenvalue interval [" << bounds.nu << ", "
                                                  << bounds.mu << "]");
  bounds_ = bounds;
}

SolveStats PcsiSolver::solve(comm::Communicator& comm,
                             const comm::HaloExchanger& halo,
                             const DistOperator& a, Preconditioner& m,
                             const comm::DistField& b, comm::DistField& x) {
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  comm::DistField r(a.decomposition(), a.rank(), x.halo());
  comm::DistField rp(a.decomposition(), a.rank(), x.halo());
  comm::DistField dx(a.decomposition(), a.rank(), x.halo());

  const double b_norm2 = a.global_dot(comm, b, b);
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  // Algorithm 2, step 1: Chebyshev constants from [nu, mu].
  const double alpha = 2.0 / (bounds_.mu - bounds_.nu);
  const double beta = (bounds_.mu + bounds_.nu) / (bounds_.mu - bounds_.nu);
  const double gamma = beta / alpha;
  double omega = 2.0 / gamma;  // omega_0

  // Step 2: initial step.
  a.residual(comm, halo, b, x, r);      // r_0 = b - B x_0
  m.apply(comm, r, rp);
  copy_interior(rp, dx);
  scale(comm, 1.0 / gamma, dx);         // dx_0 = gamma^-1 M^-1 r_0
  axpy(comm, 1.0, dx, x);               // x_1 = x_0 + dx_0
  a.residual(comm, halo, b, x, r);      // r_1 = b - B x_1

  for (int k = 1; k <= opt_.max_iterations; ++k) {
    stats.iterations = k;

    // Step 5: omega_k = 1 / (gamma - omega_{k-1} / (4 alpha^2)).
    omega = 1.0 / (gamma - omega / (4.0 * alpha * alpha));

    m.apply(comm, r, rp);                            // step 6
    // Steps 7-8 fused into one sweep: dx = omega rp + (gamma omega - 1) dx,
    // then x += dx.
    lincomb_axpy(comm, omega, rp, gamma * omega - 1.0, dx, 1.0, x);

    // Steps 9-11. On check iterations the residual sweep also produces
    // the masked ||r||² (fused kernel), so the convergence check — the
    // only global reduction P-CSI does — costs zero extra field passes.
    if (k % opt_.check_frequency == 0) {
      const double r_norm2 =
          comm.allreduce_sum(a.residual_local_norm2(comm, halo, b, x, r));
      if (opt_.record_residuals)
        stats.residual_history.emplace_back(k,
                                            std::sqrt(r_norm2 / b_norm2));
      if (r_norm2 <= threshold2) {
        stats.converged = true;
        stats.relative_residual = std::sqrt(r_norm2 / b_norm2);
        break;
      }
    } else {
      a.residual(comm, halo, b, x, r);
    }
  }

  if (!stats.converged) {
    stats.relative_residual =
        std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

}  // namespace minipop::solver
