// Depth-k ghost-zone (communication-avoiding) sweep engine.
//
// The classic barotropic solvers exchange a 1..2-wide halo before EVERY
// stencil sweep, so each P-CSI iteration pays one message latency per
// neighbor. At scale that latency — not bandwidth — dominates the solve
// (paper §5.3). The communication-avoiding alternative exchanges a
// DEPTH-k ghost region once, then runs k successive sweeps on shrinking
// extended domains: sweep j covers the interior plus a rim of width
// k - j, reading operands one cell wider, so after k sweeps the interior
// is exactly as if k separate exchange+sweep rounds had run — at 1/k the
// exchange rounds, paid for with redundant perimeter flops
// (~ 2*s*k + k^2 extra points per sweep on an s x s block).
//
// BITWISE CONTRACT. The redundant ghost computation executes the
// IDENTICAL floating-point operations on IDENTICAL data as the owning
// rank's interior computation:
//   * extended coefficient/mask/inverse-diagonal planes are gathered
//     from the SAME global stencil planes the per-block copies came
//     from (periodic-x wrap, zeros outside the domain), so a ghost
//     cell's coefficients equal the owner's interior coefficients bit
//     for bit, and the inverse diagonal repeats the preconditioner's
//     exact expression (mask ? 1.0/diag : 0.0; fp32 mirrors demote the
//     double values exactly like the baseline mirrors);
//   * the sweeps reuse the UNCHANGED kernels (residual9, lincomb_axpy,
//     diag_apply, masked_copy) on offset pointers — per-element
//     expression order is position-independent, so a ghost point's
//     result equals the owner's result bit for bit;
//   * outside the global domain coefficients and mask are identically
//     zero and the exchange zero-fills the rims, so out-of-domain ghost
//     arithmetic only ever adds +/-0 and cannot perturb any sum.
// Hence k grouped sweeps leave every interior cell BITWISE EQUAL to k
// single-exchange sweeps — pinned by tests across serial/multi-rank,
// scalar/batched, fp64/fp32.
//
// Cost accounting: every entry point adds its executed flops (extended
// points included) to CostCounters::flops and the (extended - interior)
// share to CostCounters::redundant_flops, so the comm-avoid overhead is
// exactly auditable.
#pragma once

#include <array>
#include <vector>

#include "src/comm/communicator.hpp"
#include "src/comm/dist_field.hpp"
#include "src/comm/dist_field_batch.hpp"
#include "src/solver/dist_operator.hpp"
#include "src/util/array2d.hpp"

namespace minipop::solver {

/// Preconditioner fused into the extended sweeps. Only the pointwise
/// preconditioners extend into ghost zones (their output at a ghost
/// cell depends only on that cell); block-EVP sweeps couple a whole
/// block and fall back to depth 1 in the factory, loudly.
enum class CaPrecond { kIdentity, kDiagonal };

class CommAvoidEngine {
 public:
  /// Build extended per-block planes at ghost width `width` (>= 1) for
  /// all blocks the operator's rank owns. The operator (and the stencil
  /// it was built from) must outlive the engine.
  CommAvoidEngine(const DistOperator& op, int width);

  int width() const { return width_; }

  /// z = M^-1 r on the extended region of every block: interior plus a
  /// rim of width e (0 <= e <= width). Reads r at extension e, writes z
  /// at extension e. Flop convention matches the baseline
  /// preconditioners: diagonal 1/pt/member, identity 0.
  template <typename T>
  void precond(comm::Communicator& comm, CaPrecond kind,
               const comm::DistFieldT<T>& r, comm::DistFieldT<T>& z,
               int e) const;
  template <typename T>
  void precond_batch(comm::Communicator& comm, CaPrecond kind,
                     const comm::DistFieldBatchT<T>& r,
                     comm::DistFieldBatchT<T>& z, int e) const;

  /// Fused P-CSI update pair on extension e: dx = a*z + b*dx, then
  /// x += dx (the baseline's lincomb_axpy with c = 1, same kernel, same
  /// bits). 4 flops/pt/member.
  template <typename T>
  void update(comm::Communicator& comm, T a, const comm::DistFieldT<T>& z,
              T b, comm::DistFieldT<T>& dx, comm::DistFieldT<T>& x,
              int e) const;
  /// Batched update with per-member coefficients (dx_m = a[m]*z_m +
  /// b[m]*dx_m; x_m += c[m]*dx_m); members with active[m] == 0 stay
  /// frozen. Flops counted for the n_act active lanes only — the
  /// batched solvers' convention (a frozen member's scalar solve has
  /// already returned).
  template <typename T>
  void update_batch(comm::Communicator& comm, const T* a,
                    const comm::DistFieldBatchT<T>& z, const T* b,
                    comm::DistFieldBatchT<T>& dx, const T* c,
                    comm::DistFieldBatchT<T>& x,
                    const unsigned char* active, int n_act, int e) const;

  /// r = b - A x on extension e, reading x one cell wider (extension
  /// e + 1 must not exceed the fields' halo). 10 flops/pt/member.
  template <typename T>
  void residual(comm::Communicator& comm, const comm::DistFieldT<T>& b,
                const comm::DistFieldT<T>& x, comm::DistFieldT<T>& r,
                int e) const;
  template <typename T>
  void residual_batch(comm::Communicator& comm,
                      const comm::DistFieldBatchT<T>& b,
                      const comm::DistFieldBatchT<T>& x,
                      comm::DistFieldBatchT<T>& r, int e) const;

 private:
  /// Extended planes of one local block, padded to `width_` on every
  /// side: logical shape (nx + 2*width_) x (ny + 2*width_), ghost cells
  /// carrying the NEIGHBOR's true coefficients (zero outside the
  /// domain).
  struct BlockPlanes {
    std::array<util::Field, grid::kNumDirs> coeff;
    util::Field inv_diag;
    util::MaskArray mask;
  };
  struct BlockPlanes32 {
    std::array<util::Array2D<float>, grid::kNumDirs> coeff;
    util::Array2D<float> inv_diag;
  };

  /// fp32 mirror of the extended planes, demoted value-by-value from
  /// the double planes on first fp32 sweep (same rule as the operator's
  /// and preconditioner's mirrors). mutable + lazy is safe: each rank
  /// owns its engine.
  void ensure_planes32() const;

  /// Record an extended sweep's flops: `per_point` flops on the
  /// (nx+2e) x (ny+2e) extension of every local block, `nb` members;
  /// the share beyond the interior also lands in redundant_flops.
  void count(comm::Communicator& comm, int e, int nb,
             std::uint64_t per_point) const;

  const DistOperator* op_;
  const grid::Decomposition* decomp_;
  int width_;
  std::vector<BlockPlanes> planes_;
  mutable std::vector<BlockPlanes32> planes32_;

  /// Land-span plans of every extended sweep region (DESIGN.md §14):
  /// ext_spans_[lb][e] covers the (nx+2e) x (ny+2e) extension-e window
  /// of local block lb's padded mask plane, e in [0, width_]. Used when
  /// the operator runs span execution, so the depth-k ghost sweeps skip
  /// land exactly like the baseline sweeps do.
  std::vector<std::vector<BlockSpans>> ext_spans_;
  /// Ocean census of the extension-e regions summed over local blocks,
  /// indexed by e — the `active` half of count()'s add_points.
  std::vector<std::uint64_t> ext_active_;
};

#define MINIPOP_COMM_AVOID_EXTERN(T)                                       \
  extern template void CommAvoidEngine::precond<T>(                        \
      comm::Communicator&, CaPrecond, const comm::DistFieldT<T>&,          \
      comm::DistFieldT<T>&, int) const;                                    \
  extern template void CommAvoidEngine::precond_batch<T>(                  \
      comm::Communicator&, CaPrecond, const comm::DistFieldBatchT<T>&,     \
      comm::DistFieldBatchT<T>&, int) const;                               \
  extern template void CommAvoidEngine::update<T>(                         \
      comm::Communicator&, T, const comm::DistFieldT<T>&, T,               \
      comm::DistFieldT<T>&, comm::DistFieldT<T>&, int) const;              \
  extern template void CommAvoidEngine::update_batch<T>(                   \
      comm::Communicator&, const T*, const comm::DistFieldBatchT<T>&,      \
      const T*, comm::DistFieldBatchT<T>&, const T*,                       \
      comm::DistFieldBatchT<T>&, const unsigned char*, int, int) const;    \
  extern template void CommAvoidEngine::residual<T>(                       \
      comm::Communicator&, const comm::DistFieldT<T>&,                     \
      const comm::DistFieldT<T>&, comm::DistFieldT<T>&, int) const;        \
  extern template void CommAvoidEngine::residual_batch<T>(                 \
      comm::Communicator&, const comm::DistFieldBatchT<T>&,                \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&, int)     \
      const;
MINIPOP_COMM_AVOID_EXTERN(double)
MINIPOP_COMM_AVOID_EXTERN(float)
#undef MINIPOP_COMM_AVOID_EXTERN

}  // namespace minipop::solver
