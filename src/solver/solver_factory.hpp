// High-level facade mirroring POP's solvers module: pick a solver
// (pcg / chrongear / pcsi) and a preconditioner (identity / diagonal /
// block-evp), and get a ready-to-call barotropic solver. P-CSI's
// eigenvalue interval is estimated with Lanczos at construction
// (collective), exactly as POP does at initialization.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "src/evp/block_evp_preconditioner.hpp"
#include "src/solver/batched_decorators.hpp"
#include "src/solver/batched_solver.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/mixed_precision.hpp"
#include "src/solver/pcg.hpp"
#include "src/solver/pcsi.hpp"
#include "src/solver/pipelined_cg.hpp"
#include "src/solver/resilient_solver.hpp"

namespace minipop::solver {

enum class SolverKind { kPcg, kChronGear, kPcsi, kPipelinedCg };
enum class PreconditionerKind { kIdentity, kDiagonal, kBlockEvp };

SolverKind solver_kind_from_string(const std::string& s);
PreconditionerKind preconditioner_kind_from_string(const std::string& s);
Precision precision_from_string(const std::string& s);
std::string to_string(SolverKind k);
std::string to_string(PreconditionerKind k);

struct SolverConfig {
  SolverKind solver = SolverKind::kChronGear;
  PreconditionerKind preconditioner = PreconditionerKind::kDiagonal;
  SolverOptions options;
  evp::BlockEvpOptions evp;
  LanczosOptions lanczos;
  /// Select the split-phase (overlapped) solver variants; equivalent to
  /// setting options.overlap. Bitwise identical results either way.
  bool overlap = false;
  /// Route solves through the ResilientSolver decorator (checkpoint
  /// restarts, P-CSI bounds re-estimation, fallback chain down to
  /// diagonal-preconditioned PCG). Fault-free iterates are bitwise
  /// identical with or without it; the decorator adds one agreement
  /// reduction per solve.
  bool resilient = true;
  RecoveryPolicy recovery;
};

/// One rank's fully-assembled barotropic solver. Construction is
/// collective across the communicator when the solver is P-CSI (Lanczos
/// runs inside).
class BarotropicSolver {
 public:
  BarotropicSolver(comm::Communicator& comm, const comm::HaloExchanger& halo,
                   const grid::CurvilinearGrid& grid,
                   const util::Field& depth,
                   const grid::NinePointStencil& stencil,
                   const grid::Decomposition& decomp,
                   const SolverConfig& config);

  /// Solve A x = b (x is both initial guess and result). Collective.
  /// `x_fresh` attests that x's halo was refreshed since its interior
  /// was last written (the model's barotropic step guarantees this).
  SolveStats solve(comm::Communicator& comm, const comm::DistField& b,
                   comm::DistField& x,
                   comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale);

  /// Solve the B independent systems A x_i = b_i as one batch, through
  /// the batched decorator stack that mirrors the scalar one — the
  /// mixed-precision, resilience and overlap settings of SolverConfig
  /// all compose with batching. P-CSI and ChronGear (at any precision)
  /// interleave the members into a DistFieldBatch and advance them in
  /// lockstep: ~B× fewer halo messages and allreduces, per-member fp64
  /// results bit-identical to B scalar solves. PCG and pipelined CG
  /// have no lockstep core; their stack is the SequentialBatchedSolver
  /// adapter over the decorated scalar path — same results, no
  /// batching win (see has_batched_path()).
  BatchSolveStats solve_batch(
      comm::Communicator& comm,
      std::span<const comm::DistField* const> bs,
      std::span<comm::DistField* const> xs,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale);

  /// True when this configuration runs a fused lockstep batched core
  /// (P-CSI or ChronGear at any precision). False means solve_batch()
  /// still works but demuxes member-by-member through the scalar stack.
  bool has_batched_path() const { return batched_lockstep_; }

  const DistOperator& op() const { return op_; }
  Preconditioner& preconditioner() { return *precond_; }
  /// The mixed-precision wrapper, or nullptr when options.precision is
  /// kFp64 (only P-CSI and ChronGear have an fp32 inner path).
  MixedPrecisionSolver* mixed() { return mixed_; }
  const SolverConfig& config() const { return config_; }
  /// Lanczos estimation details; only set for P-CSI.
  const std::optional<LanczosResult>& lanczos() const { return lanczos_; }
  /// The resilience decorator, or nullptr when config.resilient is off.
  ResilientSolver* resilient() { return resilient_; }
  /// The batched decorators' views (nullptr when not in the batched
  /// stack — non-lockstep solvers, fp64, or resilient off).
  BatchedMixedPrecisionSolver* batched_mixed() { return batched_mixed_; }
  BatchedResilientSolver* batched_resilient() { return batched_resilient_; }
  /// The assembled batched stack (never null).
  BatchedSolver& batched() { return *batched_; }
  /// e.g. "pcsi+block-evp".
  std::string description() const;

 private:
  SolverConfig config_;
  const comm::HaloExchanger* halo_;
  DistOperator op_;
  std::unique_ptr<Preconditioner> precond_;
  std::unique_ptr<IterativeSolver> solver_;
  /// Batched stack mirroring solver_'s decorators (lockstep core for
  /// pcsi/chrongear, sequential demux adapter otherwise).
  std::unique_ptr<BatchedSolver> batched_;
  bool batched_lockstep_ = false;
  ResilientSolver* resilient_ = nullptr;  ///< view into solver_, if wrapped
  MixedPrecisionSolver* mixed_ = nullptr;  ///< view into solver_, if wrapped
  BatchedMixedPrecisionSolver* batched_mixed_ = nullptr;  ///< view into batched_
  BatchedResilientSolver* batched_resilient_ = nullptr;   ///< view into batched_
  std::optional<LanczosResult> lanczos_;
};

}  // namespace minipop::solver
