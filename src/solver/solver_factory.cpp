#include "src/solver/solver_factory.hpp"

#include <algorithm>

#include "src/perf/cost_equations.hpp"
#include "src/util/error.hpp"
#include "src/util/log.hpp"

namespace minipop::solver {

SolverKind solver_kind_from_string(const std::string& s) {
  if (s == "pcg") return SolverKind::kPcg;
  if (s == "chrongear" || s == "cg") return SolverKind::kChronGear;
  if (s == "pcsi" || s == "csi") return SolverKind::kPcsi;
  if (s == "pipecg" || s == "pipelined") return SolverKind::kPipelinedCg;
  MINIPOP_REQUIRE(false, "unknown solver '"
                             << s << "' (pcg|chrongear|pcsi|pipecg)");
  return SolverKind::kChronGear;
}

PreconditionerKind preconditioner_kind_from_string(const std::string& s) {
  if (s == "identity" || s == "none") return PreconditionerKind::kIdentity;
  if (s == "diagonal" || s == "diag") return PreconditionerKind::kDiagonal;
  if (s == "evp" || s == "block-evp")
    return PreconditionerKind::kBlockEvp;
  MINIPOP_REQUIRE(false, "unknown preconditioner '"
                             << s << "' (identity|diagonal|evp)");
  return PreconditionerKind::kDiagonal;
}

Precision precision_from_string(const std::string& s) {
  if (s == "fp64" || s == "double") return Precision::kFp64;
  if (s == "fp32" || s == "float") return Precision::kFp32;
  if (s == "mixed") return Precision::kMixed;
  MINIPOP_REQUIRE(false, "unknown precision '" << s << "' (fp64|fp32|mixed)");
  return Precision::kFp64;
}

std::string to_string(SolverKind k) {
  switch (k) {
    case SolverKind::kPcg: return "pcg";
    case SolverKind::kChronGear: return "chrongear";
    case SolverKind::kPcsi: return "pcsi";
    case SolverKind::kPipelinedCg: return "pipecg";
  }
  return "?";
}

std::string to_string(PreconditionerKind k) {
  switch (k) {
    case PreconditionerKind::kIdentity: return "identity";
    case PreconditionerKind::kDiagonal: return "diagonal";
    case PreconditionerKind::kBlockEvp: return "block-evp";
  }
  return "?";
}

BarotropicSolver::BarotropicSolver(comm::Communicator& comm,
                                   const comm::HaloExchanger& halo,
                                   const grid::CurvilinearGrid& grid,
                                   const util::Field& depth,
                                   const grid::NinePointStencil& stencil,
                                   const grid::Decomposition& decomp,
                                   const SolverConfig& config)
    : config_(config),
      halo_(&halo),
      op_(stencil, decomp, comm.rank()) {
  // The facade-level flag is a synonym for the per-solver option.
  if (config_.overlap) config_.options.overlap = true;

  // Resolve the comm-avoiding ghost-zone depth (DESIGN.md §13) to a
  // concrete k in [1, min(kMaxHaloDepth, widest-supported rim)] before
  // anything reads it. Only P-CSI has the reduction-free iteration body
  // the grouped schedule needs, and only the pointwise preconditioners
  // have an extended-domain apply — every other combination falls back
  // to depth 1, loudly when the user asked for more.
  {
    int& hd = config_.options.halo_depth;
    MINIPOP_REQUIRE(hd == kHaloDepthAuto ||
                        (hd >= 1 && hd <= kMaxHaloDepth),
                    "halo_depth=" << hd << " (want 1.." << kMaxHaloDepth
                                  << " or " << kHaloDepthAuto << "=auto)");
    if (config_.solver != SolverKind::kPcsi) {
      if (hd > 1)
        MINIPOP_WARN("halo_depth=" << hd << " ignored: solver '"
                                   << to_string(config_.solver)
                                   << "' has no comm-avoiding schedule");
      hd = 1;
    } else if (config_.preconditioner == PreconditionerKind::kBlockEvp) {
      if (hd != 1)
        MINIPOP_WARN(
            "halo_depth=" << hd
                          << " ignored: block-evp has no extended-domain "
                             "apply; running depth-1 exchanges");
      hd = 1;
    } else {
      if (hd == kHaloDepthAuto) {
        const long points = static_cast<long>(decomp.nx_global()) *
                            decomp.ny_global();
        // Land-aware: the model discounts sweep flops by the mask's
        // ocean fraction, which shifts the break-even toward deeper
        // ghost zones on land-heavy grids (redundant rim work is
        // discounted too; exchange latency is not).
        hd = perf::choose_halo_depth(
            perf::yellowstone_profile(), perf::Config::kPcsiDiag, points,
            decomp.nranks(), config_.options.check_frequency, kMaxHaloDepth,
            decomp.ocean_fraction());
        MINIPOP_INFO("halo_depth=auto resolved to " << hd);
      }
      const int widest = std::min(kMaxHaloDepth, decomp.max_halo_width());
      if (hd > widest) {
        MINIPOP_WARN("halo_depth=" << hd << " clamped to " << widest
                                   << " (narrowest active block bounds "
                                      "the ghost rim)");
        hd = widest;
      }
    }
  }
  // Pipelined CG amplifies any asymmetry of the preconditioner, and EVP
  // marching round-off IS such an asymmetry: require much more accurate
  // (hence more subdivided) tiles for that pairing.
  if (config_.solver == SolverKind::kPipelinedCg &&
      config_.preconditioner == PreconditionerKind::kBlockEvp) {
    config_.evp.tile_accuracy =
        std::min(config_.evp.tile_accuracy, 1e-8);
  }
  switch (config_.preconditioner) {
    case PreconditionerKind::kIdentity:
      precond_ = std::make_unique<IdentityPreconditioner>(op_);
      break;
    case PreconditionerKind::kDiagonal:
      precond_ = std::make_unique<DiagonalPreconditioner>(op_);
      break;
    case PreconditionerKind::kBlockEvp:
      precond_ = std::make_unique<evp::BlockEvpPreconditioner>(
          op_, grid, depth, config_.evp);
      break;
  }

  switch (config_.solver) {
    case SolverKind::kPcg:
      solver_ = std::make_unique<PcgSolver>(config_.options);
      break;
    case SolverKind::kChronGear:
      solver_ = std::make_unique<ChronGearSolver>(config_.options);
      break;
    case SolverKind::kPipelinedCg:
      solver_ = std::make_unique<PipelinedCgSolver>(config_.options);
      break;
    case SolverKind::kPcsi: {
      lanczos_ =
          estimate_eigenvalue_bounds(comm, halo, op_, *precond_,
                                     config_.lanczos);
      solver_ = std::make_unique<PcsiSolver>(lanczos_->bounds,
                                             config_.options);
      break;
    }
  }

  if (config_.options.precision != Precision::kFp64) {
    MINIPOP_REQUIRE(config_.solver == SolverKind::kPcsi ||
                        config_.solver == SolverKind::kChronGear,
                    "precision " << to_string(config_.options.precision)
                                 << " needs pcsi or chrongear (got "
                                 << to_string(config_.solver) << ")");
    auto mixed = std::make_unique<MixedPrecisionSolver>(std::move(solver_),
                                                        config_.options);
    mixed_ = mixed.get();
    solver_ = std::move(mixed);
  }

  if (config_.resilient) {
    config_.recovery.lanczos = config_.lanczos;
    auto resilient = std::make_unique<ResilientSolver>(std::move(solver_),
                                                       config_.recovery);
    // Fallback chain toward ever-simpler methods, ending at the
    // configuration least likely to share the primary's failure mode:
    // PCG with a freshly built diagonal preconditioner.
    if (config_.solver == SolverKind::kPcsi ||
        config_.solver == SolverKind::kPipelinedCg)
      resilient->add_fallback(
          std::make_unique<ChronGearSolver>(config_.options));
    if (config_.solver != SolverKind::kPcg)
      resilient->add_fallback(std::make_unique<PcgSolver>(config_.options),
                              /*use_diagonal_precond=*/true);
    resilient_ = resilient.get();
    solver_ = std::move(resilient);
  }

  // Batched execution stack, decorated exactly like the scalar one so
  // every SolverConfig combination (precision × resilient × overlap)
  // composes with batching. The short-recurrence solvers get the
  // lockstep multi-RHS core; PCG and pipelined CG have no lockstep core
  // and demux through the decorated scalar stack instead.
  batched_lockstep_ = config_.solver == SolverKind::kPcsi ||
                      config_.solver == SolverKind::kChronGear;
  if (batched_lockstep_) {
    if (config_.solver == SolverKind::kPcsi)
      batched_ = std::make_unique<BatchedPcsiSolver>(lanczos_->bounds,
                                                     config_.options);
    else
      batched_ = std::make_unique<BatchedChronGearSolver>(config_.options);

    if (config_.options.precision != Precision::kFp64) {
      auto bmixed = std::make_unique<BatchedMixedPrecisionSolver>(
          std::move(batched_), config_.options);
      batched_mixed_ = bmixed.get();
      batched_ = std::move(bmixed);
    }

    if (config_.resilient) {
      auto bres = std::make_unique<BatchedResilientSolver>(
          std::move(batched_), config_.recovery);
      // Same chain shape as the scalar decorator: a lockstep fallback
      // first, then the last-resort scalar demux — PCG with a freshly
      // built diagonal preconditioner, member by member.
      if (config_.solver == SolverKind::kPcsi)
        bres->add_fallback(
            std::make_unique<BatchedChronGearSolver>(config_.options));
      bres->add_scalar_fallback(std::make_unique<PcgSolver>(config_.options),
                                /*use_diagonal_precond=*/true);
      batched_resilient_ = bres.get();
      batched_ = std::move(bres);
    }
  } else {
    batched_ = std::make_unique<SequentialBatchedSolver>(solver_.get());
  }
}

SolveStats BarotropicSolver::solve(comm::Communicator& comm,
                                   const comm::DistField& b,
                                   comm::DistField& x,
                                   comm::HaloFreshness x_fresh) {
  return solver_->solve(comm, *halo_, op_, *precond_, b, x, x_fresh);
}

BatchSolveStats BarotropicSolver::solve_batch(
    comm::Communicator& comm, std::span<const comm::DistField* const> bs,
    std::span<comm::DistField* const> xs, comm::HaloFreshness x_fresh) {
  const int nb = static_cast<int>(bs.size());
  MINIPOP_REQUIRE(nb >= 1 && bs.size() == xs.size(),
                  "solve_batch: need matching non-empty b/x sets (got "
                      << bs.size() << " vs " << xs.size() << ")");

  const int halo_width = xs[0]->halo();
  comm::DistFieldBatch bb(op_.decomposition(), op_.rank(), nb, halo_width);
  comm::DistFieldBatch xb(op_.decomposition(), op_.rank(), nb, halo_width);
  for (int m = 0; m < nb; ++m) {
    MINIPOP_REQUIRE(bb.member_compatible(*bs[m]) &&
                        xb.member_compatible(*xs[m]),
                    "solve_batch: member " << m
                                           << " incompatible with batch");
    bb.load_member(m, *bs[m]);
    xb.load_member(m, *xs[m]);
  }

  BatchSolveStats out =
      batched_->solve(comm, *halo_, op_, *precond_, bb, xb, x_fresh);
  for (int m = 0; m < nb; ++m) xb.store_member(m, *xs[m]);
  return out;
}

std::string BarotropicSolver::description() const {
  std::string d = to_string(config_.solver);
  d += "+";
  d += to_string(config_.preconditioner);
  if (config_.options.precision != Precision::kFp64) {
    d += "+";
    d += to_string(config_.options.precision);
  }
  // config_.options.halo_depth holds the RESOLVED depth (auto and
  // unsupported requests were settled at construction).
  if (config_.options.halo_depth > 1)
    d += "+ca(k=" + std::to_string(config_.options.halo_depth) + ")";
  return d;
}

}  // namespace minipop::solver
