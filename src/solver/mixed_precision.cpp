#include "src/solver/mixed_precision.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "src/solver/comm_avoid.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/integrity.hpp"
#include "src/solver/kernels.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

namespace {

/// Interior copy between fp32 fields of different halo widths (the
/// comm-avoiding loop runs on deep-halo copies).
void copy_interior_any(const comm::DistField32& src,
                       comm::DistField32& dst) {
  for (int lb = 0; lb < src.num_local_blocks(); ++lb) {
    const auto& info = src.info(lb);
    kernels::copy(info.nx, info.ny, src.interior(lb), src.stride(lb),
                  dst.interior(lb), dst.stride(lb));
  }
}

/// Outcome of one fp32 solve (whole-solve or refinement inner).
struct Inner32Result {
  int iterations = 0;
  bool converged = false;
  double rel = 0.0;  ///< final relative residual vs. the fp32 rhs
  FailureKind failure = FailureKind::kNone;
};

/// fp32 P-CSI: the blocking Algorithm 2 loop on fp32 fields and the fp32
/// coefficient mirror. With opt.overlap the halo exchanges hide behind
/// the interior sweeps (the overlapped fp32 variants); the reduction
/// speculation of the fp64 overlapped path is not replicated — inner
/// solves check rarely, so there is little to hide.
Inner32Result run_pcsi32(comm::Communicator& comm,
                         const comm::HaloExchanger& halo,
                         const DistOperator& a, Preconditioner& m,
                         const comm::DistField32& b32,
                         comm::DistField32& x32, EigenBounds eb,
                         const SolverOptions& opt, double rel_tol,
                         int max_iters,
                         std::vector<std::pair<int, double>>* history) {
  Inner32Result out;
  const bool ov = opt.overlap;
  comm::DistField32 r(a.decomposition(), a.rank(), x32.halo());
  comm::DistField32 rp(a.decomposition(), a.rank(), x32.halo());
  comm::DistField32 dx(a.decomposition(), a.rank(), x32.halo());

  const double b_norm2 = a.global_dot(comm, b32, b32);
  if (b_norm2 == 0.0) {
    fill_interior(x32, 0.0);
    out.converged = true;
    return out;
  }
  const double threshold2 = rel_tol * rel_tol * b_norm2;

  const double alpha = 2.0 / (eb.mu - eb.nu);
  const double beta = (eb.mu + eb.nu) / (eb.mu - eb.nu);
  const double gamma = beta / alpha;
  double omega = 2.0 / gamma;

  if (ov)
    a.residual_overlapped(comm, halo, b32, x32, r);
  else
    a.residual(comm, halo, b32, x32, r);
  m.apply(comm, r, rp);
  copy_interior(rp, dx);
  scale(comm, 1.0 / gamma, dx, a.span_plan());
  axpy(comm, 1.0, dx, x32, a.span_plan());
  if (ov)
    a.residual_overlapped(comm, halo, b32, x32, r);
  else
    a.residual(comm, halo, b32, x32, r);

  ConvergenceGuard guard(opt);
  for (int k = 1; k <= max_iters; ++k) {
    out.iterations = k;
    omega = 1.0 / (gamma - omega / (4.0 * alpha * alpha));
    m.apply(comm, r, rp);
    lincomb_axpy(comm, omega, rp, gamma * omega - 1.0, dx, 1.0, x32,
                 a.span_plan());

    if (k % opt.check_frequency == 0) {
      const double local =
          ov ? a.residual_local_norm2_overlapped(comm, halo, b32, x32, r)
             : a.residual_local_norm2(comm, halo, b32, x32, r);
      const double r_norm2 = comm.allreduce_sum(local);
      const double rel = std::sqrt(r_norm2 / b_norm2);
      if (history) history->emplace_back(k, rel);
      if (r_norm2 <= threshold2) {
        out.converged = true;
        out.rel = rel;
        break;
      }
      out.failure = guard.check(rel);
      if (out.failure != FailureKind::kNone) break;
    } else {
      if (ov)
        a.residual_overlapped(comm, halo, b32, x32, r);
      else
        a.residual(comm, halo, b32, x32, r);
    }
  }

  if (!out.converged) {
    if (out.failure == FailureKind::kNone) out.failure = FailureKind::kMaxIters;
    out.rel = std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  return out;
}

/// Communication-avoiding fp32 P-CSI: run_pcsi32's iteration with the
/// exchanges grouped — one depth-k ghost exchange of {x, dx, r} per
/// group of up to k iterations, sweeps on shrinking extended domains
/// through the engine's fp32 coefficient mirrors. Check logic mirrors
/// run_pcsi32 exactly (plain allreduce, no auditor), so iterates and
/// residual history are bitwise identical to the depth-1 fp32 loop.
Inner32Result run_pcsi32_ca(comm::Communicator& comm,
                            const comm::HaloExchanger& halo,
                            const DistOperator& a, Preconditioner& m,
                            const CommAvoidEngine& eng,
                            const comm::DistField32& b32,
                            comm::DistField32& x32, EigenBounds eb,
                            const SolverOptions& opt, double rel_tol,
                            int max_iters,
                            std::vector<std::pair<int, double>>* history) {
  Inner32Result out;
  const int depth = eng.width();
  const CaPrecond kind = m.name() == "diagonal" ? CaPrecond::kDiagonal
                                                : CaPrecond::kIdentity;

  // Deep-halo working copies (see PcsiSolver::solve_comm_avoid).
  const int hw = std::max(x32.halo(), depth);
  comm::DistField32 bw(a.decomposition(), a.rank(), hw);
  comm::DistField32 xw(a.decomposition(), a.rank(), hw);
  comm::DistField32 r(a.decomposition(), a.rank(), hw);
  comm::DistField32 rp(a.decomposition(), a.rank(), hw);
  comm::DistField32 dx(a.decomposition(), a.rank(), hw);
  copy_interior_any(b32, bw);
  copy_interior_any(x32, xw);

  const double b_norm2 = a.global_dot(comm, bw, bw);
  if (b_norm2 == 0.0) {
    fill_interior(x32, 0.0);
    out.converged = true;
    return out;
  }
  const double threshold2 = rel_tol * rel_tol * b_norm2;

  const double alpha = 2.0 / (eb.mu - eb.nu);
  const double beta = (eb.mu + eb.nu) / (eb.mu - eb.nu);
  const double gamma = beta / alpha;
  double omega = 2.0 / gamma;

  // b's deep ghosts feed every extended residual sweep: ONE exchange.
  halo.exchange(comm, bw);

  a.residual(comm, halo, bw, xw, r);
  m.apply(comm, r, rp);
  copy_interior(rp, dx);
  scale(comm, 1.0 / gamma, dx, a.span_plan());
  axpy(comm, 1.0, dx, xw, a.span_plan());
  a.residual(comm, halo, bw, xw, r);

  ConvergenceGuard guard(opt);
  const comm::FieldSetT<float> group_sets[3] = {
      comm::FieldSetT<float>(xw), comm::FieldSetT<float>(dx),
      comm::FieldSetT<float>(r)};
  int k = 1;
  while (k <= max_iters) {
    const int to_check =
        opt.check_frequency - ((k - 1) % opt.check_frequency);
    const int remaining = max_iters - k + 1;
    const int g = std::min({depth, to_check, remaining});

    halo.exchange_group<float>(
        comm, std::span<const comm::FieldSetT<float>>(group_sets, 3));

    for (int j = 1; j <= g; ++j, ++k) {
      out.iterations = k;
      omega = 1.0 / (gamma - omega / (4.0 * alpha * alpha));
      const int ept = g - j + 1;
      // Scalars demote exactly where the fp32 field_ops overloads do.
      eng.precond(comm, kind, r, rp, ept);
      eng.update(comm, static_cast<float>(omega), rp,
                 static_cast<float>(gamma * omega - 1.0), dx, xw, ept);
      eng.residual(comm, bw, xw, r, ept - 1);
    }
    const int k_last = k - 1;

    if (k_last % opt.check_frequency == 0) {
      const double r_norm2 = comm.allreduce_sum(a.local_dot(comm, r, r));
      const double rel = std::sqrt(r_norm2 / b_norm2);
      if (history) history->emplace_back(k_last, rel);
      if (r_norm2 <= threshold2) {
        out.converged = true;
        out.rel = rel;
        break;
      }
      out.failure = guard.check(rel);
      if (out.failure != FailureKind::kNone) break;
    }
  }

  if (!out.converged) {
    if (out.failure == FailureKind::kNone) out.failure = FailureKind::kMaxIters;
    out.rel = std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  copy_interior_any(xw, x32);
  return out;
}

/// fp32 ChronGear: the blocking Algorithm 1 loop on fp32 fields. The
/// fused dot reductions already arrive as doubles (the fp32 kernels
/// accumulate in fp64), so the scalar recurrence is unchanged.
Inner32Result run_cg32(comm::Communicator& comm,
                       const comm::HaloExchanger& halo,
                       const DistOperator& a, Preconditioner& m,
                       const comm::DistField32& b32, comm::DistField32& x32,
                       const SolverOptions& opt, double rel_tol,
                       int max_iters,
                       std::vector<std::pair<int, double>>* history) {
  Inner32Result out;
  const bool ov = opt.overlap;
  comm::DistField32 r(a.decomposition(), a.rank(), x32.halo());
  comm::DistField32 rp(a.decomposition(), a.rank(), x32.halo());
  comm::DistField32 z(a.decomposition(), a.rank(), x32.halo());
  comm::DistField32 s(a.decomposition(), a.rank(), x32.halo());
  comm::DistField32 p(a.decomposition(), a.rank(), x32.halo());

  const double b_norm2 = a.global_dot(comm, b32, b32);
  if (b_norm2 == 0.0) {
    fill_interior(x32, 0.0);
    out.converged = true;
    return out;
  }
  const double threshold2 = rel_tol * rel_tol * b_norm2;

  if (ov)
    a.residual_overlapped(comm, halo, b32, x32, r);
  else
    a.residual(comm, halo, b32, x32, r);
  fill_interior(s, 0.0);
  fill_interior(p, 0.0);
  double rho_old = 1.0;
  double sigma_old = 0.0;
  ConvergenceGuard guard(opt);

  for (int k = 1; k <= max_iters; ++k) {
    out.iterations = k;
    m.apply(comm, r, rp);
    if (ov)
      a.apply_overlapped(comm, halo, rp, z);
    else
      a.apply(comm, halo, rp, z);

    const bool check = (k % opt.check_frequency == 0);
    double local[3];
    a.local_dot3(comm, r, rp, z, check, local);
    comm.allreduce(std::span<double>(local, check ? 3 : 2),
                   comm::ReduceOp::kSum);
    const double rho = local[0];
    const double delta = local[1];
    if (check) {
      const double rel = std::sqrt(local[2] / b_norm2);
      if (history) history->emplace_back(k, rel);
      if (local[2] <= threshold2) {
        out.converged = true;
        out.rel = rel;
        break;
      }
      out.failure = guard.check(rel);
      if (out.failure != FailureKind::kNone) break;
    }

    const double beta = rho / rho_old;
    const double sigma = delta - beta * beta * sigma_old;
    if (!ConvergenceGuard::finite(rho) || !ConvergenceGuard::finite(sigma)) {
      out.failure = FailureKind::kNanDetected;
      break;
    }
    if (sigma == 0.0) {
      out.failure = FailureKind::kBreakdown;
      break;
    }
    const double alpha = rho / sigma;

    lincomb_axpy(comm, 1.0, rp, beta, s, alpha, x32, a.span_plan());
    lincomb_axpy(comm, 1.0, z, beta, p, -alpha, r, a.span_plan());

    rho_old = rho;
    sigma_old = sigma;
  }

  if (!out.converged) {
    if (out.failure == FailureKind::kNone) out.failure = FailureKind::kMaxIters;
    out.rel = std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  return out;
}

}  // namespace

MixedPrecisionSolver::MixedPrecisionSolver(
    std::unique_ptr<IterativeSolver> fp64_twin, const SolverOptions& options)
    : twin_(std::move(fp64_twin)), opt_(options) {
  MINIPOP_REQUIRE(twin_ != nullptr, "mixed precision needs a solver");
  pcsi_ = dynamic_cast<PcsiSolver*>(twin_.get());
  cg_ = dynamic_cast<ChronGearSolver*>(twin_.get());
  MINIPOP_REQUIRE(pcsi_ != nullptr || cg_ != nullptr,
                  "mixed precision wraps pcsi or chrongear, got '"
                      << twin_->name() << "'");
}

MixedPrecisionSolver::~MixedPrecisionSolver() = default;

const CommAvoidEngine* MixedPrecisionSolver::ca_engine(const DistOperator& a,
                                                       Preconditioner& m) {
  if (opt_.halo_depth <= 1 || pcsi_ == nullptr) return nullptr;
  if (m.name() != "diagonal" && m.name() != "identity") return nullptr;
  const int depth = std::min(std::max(opt_.halo_depth, 1),
                             a.decomposition().max_halo_width());
  if (depth <= 1) return nullptr;
  if (!ca_engine_ || ca_op_ != &a || ca_engine_->width() != depth) {
    ca_engine_ = std::make_unique<CommAvoidEngine>(a, depth);
    ca_op_ = &a;
  }
  return ca_engine_.get();
}

std::string MixedPrecisionSolver::name() const {
  return std::string(to_string(opt_.precision)) + "(" + twin_->name() + ")";
}

SolveStats MixedPrecisionSolver::solve(comm::Communicator& comm,
                                       const comm::HaloExchanger& halo,
                                       const DistOperator& a,
                                       Preconditioner& m,
                                       const comm::DistField& b,
                                       comm::DistField& x,
                                       comm::HaloFreshness x_fresh) {
  if (forced_fp64_ || opt_.precision == Precision::kFp64)
    return twin_->solve(comm, halo, a, m, b, x, x_fresh);
  if (opt_.precision == Precision::kFp32)
    return solve_fp32(comm, halo, a, m, b, x);
  return solve_mixed(comm, halo, a, m, b, x, x_fresh);
}

SolveStats MixedPrecisionSolver::solve_fp32(comm::Communicator& comm,
                                            const comm::HaloExchanger& halo,
                                            const DistOperator& a,
                                            Preconditioner& m,
                                            const comm::DistField& b,
                                            comm::DistField& x) {
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  comm::DistField32 b32(a.decomposition(), a.rank(), b.halo());
  comm::DistField32 x32(a.decomposition(), a.rank(), x.halo());
  demote(b, b32);
  demote(x, x32);  // halos stale; the first residual refreshes them

  auto* history = opt_.record_residuals ? &stats.residual_history : nullptr;
  const CommAvoidEngine* eng = ca_engine(a, m);
  const Inner32Result res =
      eng ? run_pcsi32_ca(comm, halo, a, m, *eng, b32, x32, pcsi_->bounds(),
                          opt_, opt_.rel_tolerance, opt_.max_iterations,
                          history)
      : pcsi_ ? run_pcsi32(comm, halo, a, m, b32, x32, pcsi_->bounds(), opt_,
                           opt_.rel_tolerance, opt_.max_iterations, history)
              : run_cg32(comm, halo, a, m, b32, x32, opt_, opt_.rel_tolerance,
                         opt_.max_iterations, history);
  promote(x32, x);

  stats.iterations = res.iterations;
  stats.converged = res.converged;
  stats.relative_residual = res.rel;
  stats.failure = res.failure;
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

SolveStats MixedPrecisionSolver::solve_mixed(comm::Communicator& comm,
                                             const comm::HaloExchanger& halo,
                                             const DistOperator& a,
                                             Preconditioner& m,
                                             const comm::DistField& b,
                                             comm::DistField& x,
                                             comm::HaloFreshness x_fresh) {
  const auto snapshot = comm.costs().counters();
  SolveStats stats;
  const bool ov = opt_.overlap;

  comm::DistField r(a.decomposition(), a.rank(), x.halo());
  comm::DistField32 r32(a.decomposition(), a.rank(), x.halo());
  comm::DistField32 d32(a.decomposition(), a.rank(), x.halo());

  const double b_norm2 = a.global_dot(comm, b, b);
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  ConvergenceGuard guard(opt_);
  IntegrityAuditor auditor(opt_);
  comm::HaloFreshness fresh = x_fresh;
  for (int sweep = 0;; ++sweep) {
    // True fp64 residual and convergence check (the refinement guard).
    double local = ov ? a.residual_local_norm2_overlapped(comm, halo, b, x,
                                                          r, fresh)
                      : a.residual_local_norm2(comm, halo, b, x, r, fresh);
    fresh = comm::HaloFreshness::kStale;
    double r_norm2;
    if (ov) {
      // Hide the check reduction behind the (local) demotion of r; the
      // demoted copy is only wasted on the final, converged sweep.
      GuardedReduction req;
      req.post(comm, opt_.integrity, std::span<double>(&local, 1));
      demote(r, r32);
      if (req.wait()) {
        stats.failure = FailureKind::kCorruptReduction;
        break;
      }
      r_norm2 = local;
    } else {
      if (allreduce_sum_guarded(comm, opt_.integrity,
                                std::span<double>(&local, 1))) {
        stats.failure = FailureKind::kCorruptReduction;
        break;
      }
      r_norm2 = local;
    }
    const double rel = std::sqrt(r_norm2 / b_norm2);
    stats.relative_residual = rel;
    if (opt_.record_residuals)
      stats.residual_history.emplace_back(stats.iterations, rel);
    const bool accept = r_norm2 <= threshold2;
    if (opt_.integrity.any_solver_check()) {
      // The refinement loop's r IS the true fp64 residual (r_is_true),
      // so only the ABFT operator audit applies — refinement is already
      // self-auditing against recurrence drift by construction, and the
      // outer check bounds whatever the fp32 inner solves did.
      stats.failure = auditor.at_check(comm, halo, a, b, r, x, b_norm2,
                                       r_norm2, /*r_is_true=*/true, accept);
      if (stats.failure != FailureKind::kNone) break;
    }
    if (accept) {
      stats.converged = true;
      break;
    }
    stats.failure = guard.check(rel);
    if (stats.failure != FailureKind::kNone) break;
    if (sweep >= opt_.refine_max_sweeps) {
      stats.failure = FailureKind::kMaxIters;
      break;
    }

    // fp32 inner solve of A d = r from zero, to a loose tolerance
    // relative to ||r|| — each sweep shrinks the fp64 residual by about
    // that factor, so fp64 tolerance is reached in a handful of sweeps.
    if (!ov) demote(r, r32);
    fill_interior(d32, 0.0);
    const CommAvoidEngine* eng = ca_engine(a, m);
    const Inner32Result inner =
        eng ? run_pcsi32_ca(comm, halo, a, m, *eng, r32, d32, pcsi_->bounds(),
                            opt_, opt_.refine_inner_tolerance,
                            opt_.refine_max_inner_iterations, nullptr)
        : pcsi_ ? run_pcsi32(comm, halo, a, m, r32, d32, pcsi_->bounds(),
                             opt_, opt_.refine_inner_tolerance,
                             opt_.refine_max_inner_iterations, nullptr)
                : run_cg32(comm, halo, a, m, r32, d32, opt_,
                           opt_.refine_inner_tolerance,
                           opt_.refine_max_inner_iterations, nullptr);
    stats.iterations += inner.iterations;
    ++stats.refine_sweeps;
    if (inner.failure == FailureKind::kNanDetected ||
        inner.failure == FailureKind::kBreakdown) {
      stats.failure = inner.failure;
      break;
    }
    axpy_promoted(comm, 1.0, d32, x);  // x += d in fp64
  }

  stats.costs = comm.costs().since(snapshot);
  return stats;
}

}  // namespace minipop::solver
