#include "src/grid/curvilinear_grid.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/error.hpp"

namespace minipop::grid {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kDegToRad = kPi / 180.0;
}  // namespace

std::string GridSpec::describe() const {
  std::ostringstream os;
  switch (kind) {
    case GridKind::kUniform: os << "uniform"; break;
    case GridKind::kLatLon: os << "latlon"; break;
    case GridKind::kDisplacedPole: os << "displaced-pole"; break;
  }
  os << " " << nx << "x" << ny << (periodic_x ? " periodic-x" : " closed");
  return os.str();
}

GridSpec pop_1deg_spec(double scale) {
  MINIPOP_REQUIRE(scale > 0 && scale <= 1.0, "scale=" << scale);
  GridSpec s;
  s.kind = GridKind::kDisplacedPole;
  s.nx = std::max(16, static_cast<int>(std::lround(320 * scale)));
  s.ny = std::max(16, static_cast<int>(std::lround(384 * scale)));
  s.periodic_x = true;
  // The 1 degree POP grid reaches high latitude, so dx/dy anisotropy is
  // strong (dx ~ cos(lat) dy); this drives the larger iteration counts the
  // paper reports for 1 degree relative to 0.1 degree (end of §4.3).
  s.lat_min = -78.0;
  s.lat_max = 84.0;
  s.pole_displacement = 0.25;
  return s;
}

GridSpec pop_0p1deg_spec(double scale) {
  MINIPOP_REQUIRE(scale > 0 && scale <= 1.0, "scale=" << scale);
  GridSpec s;
  s.kind = GridKind::kDisplacedPole;
  s.nx = std::max(16, static_cast<int>(std::lround(3600 * scale)));
  s.ny = std::max(16, static_cast<int>(std::lround(2400 * scale)));
  s.periodic_x = true;
  // The production 0.1 degree grid is a tripole grid whose spacing ratio is
  // closer to one (paper §4.3); we cap the latitude range a bit lower and
  // use a smaller displacement so cells stay closer to square.
  s.lat_min = -75.0;
  s.lat_max = 75.0;
  s.pole_displacement = 0.10;
  return s;
}

CurvilinearGrid::CurvilinearGrid(const GridSpec& spec) : spec_(spec) {
  MINIPOP_REQUIRE(spec.nx >= 4 && spec.ny >= 4,
                  "grid too small: " << spec.nx << "x" << spec.ny);
  const int nx = spec.nx;
  const int ny = spec.ny;
  dxt_ = util::Field(nx, ny);
  dyt_ = util::Field(nx, ny);
  area_t_ = util::Field(nx, ny);
  lat_ = util::Field(nx, ny);
  lon_ = util::Field(nx, ny);

  switch (spec.kind) {
    case GridKind::kUniform: {
      MINIPOP_REQUIRE(spec.dx > 0 && spec.dy > 0,
                      "dx=" << spec.dx << " dy=" << spec.dy);
      dxt_.fill(spec.dx);
      dyt_.fill(spec.dy);
      break;
    }
    case GridKind::kLatLon:
    case GridKind::kDisplacedPole: {
      MINIPOP_REQUIRE(spec.lat_max > spec.lat_min,
                      "lat range [" << spec.lat_min << "," << spec.lat_max
                                    << "]");
      const double dlat = (spec.lat_max - spec.lat_min) / ny;
      const double dlon = 360.0 / nx;
      for (int j = 0; j < ny; ++j) {
        const double latc = spec.lat_min + (j + 0.5) * dlat;
        const double coslat = std::max(0.05, std::cos(latc * kDegToRad));
        for (int i = 0; i < nx; ++i) {
          const double lonc = (i + 0.5) * dlon;
          double stretch = 1.0;
          if (spec.kind == GridKind::kDisplacedPole) {
            // Smooth longitude- and latitude-dependent stretching: a proxy
            // for the dipole grid's displaced northern pole. Metric stays
            // orthogonal; only the spacings vary.
            const double north_weight =
                0.5 * (1.0 + std::tanh((latc - 30.0) / 25.0));
            stretch = 1.0 + spec.pole_displacement * north_weight *
                                std::cos(lonc * kDegToRad);
          }
          lat_(i, j) = latc;
          lon_(i, j) = lonc;
          dxt_(i, j) = spec.radius * kDegToRad * dlon * coslat * stretch;
          dyt_(i, j) = spec.radius * kDegToRad * dlat / stretch;
        }
      }
      break;
    }
  }

  total_area_ = 0.0;
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      area_t_(i, j) = dxt_(i, j) * dyt_(i, j);
      total_area_ += area_t_(i, j);
    }

  // Corner metrics: average of the four surrounding T-cells.
  const int ncx = nxc();
  const int ncy = nyc();
  dxu_ = util::Field(ncx, ncy);
  dyu_ = util::Field(ncx, ncy);
  for (int j = 0; j < ncy; ++j) {
    for (int i = 0; i < ncx; ++i) {
      const int ip = (i + 1) % nx;  // valid for periodic; i+1 < nx otherwise
      dxu_(i, j) = 0.25 * (dxt_(i, j) + dxt_(ip, j) + dxt_(i, j + 1) +
                           dxt_(ip, j + 1));
      dyu_(i, j) = 0.25 * (dyt_(i, j) + dyt_(ip, j) + dyt_(i, j + 1) +
                           dyt_(ip, j + 1));
    }
  }
}

double CurvilinearGrid::mean_dx() const {
  double sum = 0.0;
  for (double v : dxt_) sum += v;
  return sum / static_cast<double>(dxt_.size());
}

double CurvilinearGrid::mean_dy() const {
  double sum = 0.0;
  for (double v : dyt_) sum += v;
  return sum / static_cast<double>(dyt_.size());
}

double CurvilinearGrid::max_aspect_ratio() const {
  double m = 0.0;
  for (int j = 0; j < ny(); ++j)
    for (int i = 0; i < nx(); ++i) {
      double r = dyt_(i, j) / dxt_(i, j);
      m = std::max(m, std::max(r, 1.0 / r));
    }
  return m;
}

}  // namespace minipop::grid
