// Block decomposition of the global grid, with land-block elimination and
// Hilbert space-filling-curve rank assignment (paper §5.2 and refs
// [10, 12]). POP divides the domain into blocks, drops blocks that are
// entirely land, and assigns the surviving blocks to processes along a
// space-filling curve to balance load and keep neighbors close.
#pragma once

#include <vector>

#include "src/grid/stencil.hpp"
#include "src/util/array2d.hpp"

namespace minipop::grid {

struct BlockInfo {
  int id = -1;      ///< dense index over *active* (non-land) blocks
  int bi = 0;       ///< block column
  int bj = 0;       ///< block row
  int i0 = 0;       ///< global i of the block's first cell
  int j0 = 0;       ///< global j of the block's first cell
  int nx = 0;       ///< block width (edge blocks may be narrower)
  int ny = 0;       ///< block height
  long ocean_cells = 0;
  int owner = -1;   ///< rank owning this block
};

class Decomposition {
 public:
  /// Decompose an nx_global x ny_global grid into blocks of nominal size
  /// block_nx x block_ny, eliminate all-land blocks using `mask`, and
  /// assign active blocks to `nranks` ranks along a Hilbert curve,
  /// balancing total ocean-cell count. Requires nranks <= active blocks.
  Decomposition(int nx_global, int ny_global, bool periodic_x,
                const util::MaskArray& mask, int block_nx, int block_ny,
                int nranks);

  int nx_global() const { return nx_global_; }
  int ny_global() const { return ny_global_; }
  bool periodic_x() const { return periodic_x_; }
  int block_nx() const { return block_nx_; }
  int block_ny() const { return block_ny_; }
  int mbx() const { return mbx_; }
  int mby() const { return mby_; }
  int nranks() const { return nranks_; }

  int num_active_blocks() const { return static_cast<int>(blocks_.size()); }
  int num_land_blocks() const { return mbx_ * mby_ - num_active_blocks(); }

  const BlockInfo& block(int id) const { return blocks_.at(id); }
  const std::vector<BlockInfo>& blocks() const { return blocks_; }

  /// Active-block id at block coordinates, or -1 if out of range / land.
  int block_id_at(int bi, int bj) const;

  /// Neighboring active-block id in direction `d` (periodic wrap in x),
  /// or -1 when the neighbor is a domain edge or an eliminated block.
  int neighbor(int id, Dir d) const;

  const std::vector<int>& blocks_of_rank(int rank) const {
    return rank_blocks_.at(rank);
  }

  /// Max over ranks of total owned ocean cells / mean — 1.0 is perfect.
  double load_imbalance() const;

  /// Ocean cells / swept cells over the ACTIVE blocks (land blocks are
  /// already eliminated and sweep nothing). This is the fraction of a
  /// dense sweep that span execution actually computes, and the factor
  /// the land-aware perf model discounts computation by (DESIGN.md §14).
  double ocean_fraction() const;

  /// Widest halo any field on this decomposition can carry: the minimum
  /// interior extent over ALL active blocks (narrow strait/edge blocks
  /// bound it, whoever owns them — the exchange reads rims of every
  /// neighbour at full width).
  int max_halo_width() const;

  /// Loudly reject a halo wider than some block's interior. Throws
  /// util::Error naming the offending block instead of letting rim
  /// pack/unpack overlap out of bounds.
  void validate_halo(int halo) const;

 private:
  int nx_global_;
  int ny_global_;
  bool periodic_x_;
  int block_nx_;
  int block_ny_;
  int mbx_;
  int mby_;
  int nranks_;
  std::vector<BlockInfo> blocks_;
  util::Array2D<int> block_grid_;  ///< (bi, bj) -> active id or -1
  std::vector<std::vector<int>> rank_blocks_;
};

}  // namespace minipop::grid
