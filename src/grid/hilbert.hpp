// Hilbert space-filling curve used for rank assignment of ocean blocks
// (paper §5.2: "space-filling curves" with land-block elimination; see
// also Dennis, IPDPS 2007).
#pragma once

#include <cstdint>

namespace minipop::grid {

/// Distance along the Hilbert curve of order `order` (a 2^order x 2^order
/// grid) for cell (x, y). Both coordinates must be in [0, 2^order).
std::uint64_t hilbert_d(int order, std::uint32_t x, std::uint32_t y);

/// Inverse mapping: distance -> (x, y).
void hilbert_xy(int order, std::uint64_t d, std::uint32_t* x,
                std::uint32_t* y);

/// Smallest curve order whose side length covers `n` (i.e. 2^order >= n).
int hilbert_order_for(int n);

}  // namespace minipop::grid
