#include "src/grid/hilbert.hpp"

#include "src/util/error.hpp"

namespace minipop::grid {

namespace {
/// Rotate/flip a quadrant appropriately (classic Hilbert curve step).
void rot(std::uint32_t n, std::uint32_t* x, std::uint32_t* y,
         std::uint32_t rx, std::uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    std::uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}
}  // namespace

std::uint64_t hilbert_d(int order, std::uint32_t x, std::uint32_t y) {
  MINIPOP_REQUIRE(order >= 0 && order < 31, "hilbert order " << order);
  const std::uint32_t n = 1u << order;
  MINIPOP_REQUIRE(x < n && y < n,
                  "hilbert point (" << x << "," << y << ") outside 2^"
                                    << order);
  std::uint64_t d = 0;
  for (std::uint32_t s = n / 2; s > 0; s /= 2) {
    std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    rot(n, &x, &y, rx, ry);
  }
  return d;
}

void hilbert_xy(int order, std::uint64_t d, std::uint32_t* x,
                std::uint32_t* y) {
  MINIPOP_REQUIRE(order >= 0 && order < 31, "hilbert order " << order);
  const std::uint32_t n = 1u << order;
  std::uint64_t t = d;
  *x = *y = 0;
  for (std::uint32_t s = 1; s < n; s *= 2) {
    std::uint32_t rx = 1 & static_cast<std::uint32_t>(t / 2);
    std::uint32_t ry = 1 & static_cast<std::uint32_t>(t ^ rx);
    rot(s, x, y, rx, ry);
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

int hilbert_order_for(int n) {
  MINIPOP_REQUIRE(n >= 1, "n=" << n);
  int order = 0;
  while ((1 << order) < n) ++order;
  return order;
}

}  // namespace minipop::grid
