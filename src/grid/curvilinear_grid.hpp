// Orthogonal curvilinear grids for the barotropic solver and mini-POP.
//
// POP discretizes the elliptic SSH system (paper Eq. 1) on a global
// orthogonal curvilinear "dipole" grid. What the operator assembly needs
// from the grid is purely metric: cell extents at tracer points (T-points)
// and at cell corners (U-points, POP's B-grid velocity points). We provide
// several analytic grid families:
//
//  * Uniform     — constant dx, dy (unit tests, EVP stability studies)
//  * LatLon      — spherical shell between two latitudes; dx shrinks with
//                  cos(lat), reproducing the anisotropy that drives the
//                  conditioning differences the paper describes in §4.3
//  * DisplacedPole — LatLon with a smooth longitude-dependent stretching,
//                  a stand-in for POP's dipole grid away from the pole
//
// Index convention: T-cell (i, j), i in [0, nx) eastward (optionally
// periodic), j in [0, ny) northward. Corner (i, j) sits northeast of
// T-cell (i, j) and touches cells (i, j), (i+1, j), (i, j+1), (i+1, j+1)
// (i+1 wraps when periodic).
#pragma once

#include <cstdint>
#include <string>

#include "src/util/array2d.hpp"

namespace minipop::grid {

enum class GridKind { kUniform, kLatLon, kDisplacedPole };

struct GridSpec {
  GridKind kind = GridKind::kLatLon;
  int nx = 320;
  int ny = 384;
  bool periodic_x = true;
  /// Sphere radius [m]; LatLon/DisplacedPole only.
  double radius = 6.371e6;
  /// Latitude bounds [deg]; LatLon/DisplacedPole only.
  double lat_min = -78.0;
  double lat_max = 84.0;
  /// Uniform cell size [m]; Uniform only.
  double dx = 1.0e5;
  double dy = 1.0e5;
  /// DisplacedPole: relative amplitude of the longitudinal stretching.
  double pole_displacement = 0.25;

  std::string describe() const;
};

/// Named grid presets mirroring the paper's two production resolutions.
/// `scale` < 1 shrinks the point count while preserving the physical
/// domain and anisotropy profile (documented substitution for
/// workstation-sized runs; pass scale = 1 for the paper-sized grid).
GridSpec pop_1deg_spec(double scale = 1.0);    // 320 x 384 at scale 1
GridSpec pop_0p1deg_spec(double scale = 1.0);  // 3600 x 2400 at scale 1

class CurvilinearGrid {
 public:
  explicit CurvilinearGrid(const GridSpec& spec);

  const GridSpec& spec() const { return spec_; }
  int nx() const { return spec_.nx; }
  int ny() const { return spec_.ny; }
  bool periodic_x() const { return spec_.periodic_x; }

  /// Number of corner (U-point) columns/rows.
  int nxc() const { return spec_.periodic_x ? spec_.nx : spec_.nx - 1; }
  int nyc() const { return spec_.ny - 1; }

  /// T-cell extents and area [m, m, m^2].
  const util::Field& dxt() const { return dxt_; }
  const util::Field& dyt() const { return dyt_; }
  const util::Field& area_t() const { return area_t_; }

  /// Corner (U-point) extents [m].
  const util::Field& dxu() const { return dxu_; }
  const util::Field& dyu() const { return dyu_; }

  /// Geographic T-point coordinates [deg]; zero for Uniform grids.
  const util::Field& lat() const { return lat_; }
  const util::Field& lon() const { return lon_; }

  /// Total ocean-free area of the domain (sum of all T-cell areas).
  double total_area() const { return total_area_; }

  /// max over cells of dyt/dxt — the anisotropy the paper links to the
  /// conditioning of the barotropic operator.
  double max_aspect_ratio() const;

  /// Mean cell extents [m] over the whole grid.
  double mean_dx() const;
  double mean_dy() const;

 private:
  GridSpec spec_;
  util::Field dxt_, dyt_, area_t_;
  util::Field dxu_, dyu_;
  util::Field lat_, lon_;
  double total_area_ = 0.0;
};

}  // namespace minipop::grid
