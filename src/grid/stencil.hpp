// Nine-point stencil operator for the implicit free-surface system
// (paper Eq. 1):  [nabla . H nabla - phi(tau)] eta = psi.
//
// We assemble the negated, symmetric positive definite form
//     A = K + phi * diag(area_T),
// where K is the B-grid discretization of -nabla.(H nabla .) written as a
// Gram form: every cell corner (U-point) carries a depth H_u (the minimum
// of the four adjacent T-cell depths, zero next to land, giving the
// no-flux coastal condition) and contributes
//     E_c = H_u * area_u * (g_x g_x^T + g_y g_y^T)
// to the 2x2 patch of cells around it, with g_x, g_y the corner-centered
// gradient weights. This construction
//   * is symmetric positive (semi-)definite by design,
//   * produces the genuine 9-point pattern POP has: for near-square cells
//     the NE/NW/SE/SW couplings dominate and the N/S/E/W couplings are an
//     order of magnitude smaller (exactly the property the paper exploits
//     in the "simplified EVP" variant, section 4.3),
//   * has identically zero coupling between ocean and land cells.
//
// phi > 0 comes from the implicit free-surface time discretization and
// makes A SPD; barotropic_phi() provides the physical value for a given
// time step.
#pragma once

#include <array>

#include "src/grid/bathymetry.hpp"
#include "src/grid/curvilinear_grid.hpp"
#include "src/linalg/dense.hpp"
#include "src/util/array2d.hpp"

namespace minipop::grid {

/// Stencil directions; kCenter first, then the four edge neighbors, then
/// the four corner neighbors.
enum class Dir : int {
  kCenter = 0,
  kEast,
  kWest,
  kNorth,
  kSouth,
  kNorthEast,
  kNorthWest,
  kSouthEast,
  kSouthWest
};
inline constexpr int kNumDirs = 9;

/// (di, dj) offset of each direction, indexed by static_cast<int>(Dir).
constexpr std::array<std::pair<int, int>, kNumDirs> kDirOffset{{
    {0, 0},
    {1, 0},
    {-1, 0},
    {0, 1},
    {0, -1},
    {1, 1},
    {-1, 1},
    {1, -1},
    {-1, -1},
}};

/// phi(tau) for POP's implicit free surface: 1 / (g tau^2) up to the
/// time-weighting constant. Units 1/m so that phi*area matches the K
/// entries (which carry H * area / dx^2 ~ m).
double barotropic_phi(double dt_seconds, double gravity = 9.806);

/// Default barotropic time steps for the two production resolutions
/// (0.1 degree: 500 steps/day, the paper's dt_count; 1 degree: 45/day).
double pop_1deg_dt_seconds();
double pop_0p1deg_dt_seconds();

class NinePointStencil {
 public:
  /// Assemble from grid metrics and a depth field (0 = land). Land rows
  /// get the bare phi*area diagonal and are fully decoupled.
  NinePointStencil(const CurvilinearGrid& grid, const util::Field& depth,
                   double phi);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  bool periodic_x() const { return periodic_x_; }
  double phi() const { return phi_; }

  const util::Field& coeff(Dir d) const {
    return coeff_[static_cast<int>(d)];
  }
  const util::MaskArray& mask() const { return mask_; }
  long ocean_cells() const { return ocean_cells_; }

  /// y = A x over the full domain (serial reference path; the distributed
  /// path applies per-block copies of the same coefficients).
  void apply(const util::Field& x, util::Field& y) const;

  /// Diagonal of A (for the diagonal preconditioner).
  const util::Field& diagonal() const {
    return coeff_[static_cast<int>(Dir::kCenter)];
  }

  /// Ratio max|edge coeff| / max|corner coeff| over ocean cells; the
  /// paper's simplified-EVP claim is that this is ~0.1 for POP grids.
  double edge_to_corner_ratio() const;

  /// Dense assembly (all nx*ny cells), for small-grid reference solves.
  linalg::DenseMatrix to_dense() const;

 private:
  int nx_;
  int ny_;
  bool periodic_x_;
  double phi_;
  long ocean_cells_ = 0;
  std::array<util::Field, kNumDirs> coeff_;
  util::MaskArray mask_;
};

}  // namespace minipop::grid
