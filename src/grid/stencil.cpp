#include "src/grid/stencil.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace minipop::grid {

double barotropic_phi(double dt_seconds, double gravity) {
  MINIPOP_REQUIRE(dt_seconds > 0 && gravity > 0,
                  "dt=" << dt_seconds << " g=" << gravity);
  return 1.0 / (gravity * dt_seconds * dt_seconds);
}

double pop_1deg_dt_seconds() { return 86400.0 / 45.0; }
double pop_0p1deg_dt_seconds() { return 86400.0 / 500.0; }

NinePointStencil::NinePointStencil(const CurvilinearGrid& grid,
                                   const util::Field& depth, double phi)
    : nx_(grid.nx()),
      ny_(grid.ny()),
      periodic_x_(grid.periodic_x()),
      phi_(phi) {
  MINIPOP_REQUIRE(depth.nx() == nx_ && depth.ny() == ny_,
                  "depth " << depth.nx() << "x" << depth.ny() << " vs grid "
                           << nx_ << "x" << ny_);
  MINIPOP_REQUIRE(phi > 0, "phi=" << phi << " (need SPD operator)");

  for (auto& f : coeff_) f = util::Field(nx_, ny_, 0.0);
  mask_ = ocean_mask(depth);
  for (auto v : mask_) ocean_cells_ += v;

  auto& c0 = coeff_[static_cast<int>(Dir::kCenter)];
  auto& ce = coeff_[static_cast<int>(Dir::kEast)];
  auto& cw = coeff_[static_cast<int>(Dir::kWest)];
  auto& cn = coeff_[static_cast<int>(Dir::kNorth)];
  auto& cs = coeff_[static_cast<int>(Dir::kSouth)];
  auto& cne = coeff_[static_cast<int>(Dir::kNorthEast)];
  auto& cnw = coeff_[static_cast<int>(Dir::kNorthWest)];
  auto& cse = coeff_[static_cast<int>(Dir::kSouthEast)];
  auto& csw = coeff_[static_cast<int>(Dir::kSouthWest)];

  // Mass (phi) term: every cell, land included, so the matrix stays SPD
  // and land stays decoupled with a positive diagonal.
  for (int j = 0; j < ny_; ++j)
    for (int i = 0; i < nx_; ++i) c0(i, j) = phi * grid.area_t()(i, j);

  // Corner (U-point) loop: accumulate the Gram-form element matrices.
  const int ncx = grid.nxc();
  const int ncy = grid.nyc();
  for (int j = 0; j < ncy; ++j) {
    for (int i = 0; i < ncx; ++i) {
      const int ip = (i + 1) % nx_;
      // No-flux coastal condition: corner depth is zero if any adjacent
      // cell is land (POP's HU = min of the surrounding HT).
      const double hu =
          std::min(std::min(depth(i, j), depth(ip, j)),
                   std::min(depth(i, j + 1), depth(ip, j + 1)));
      if (hu <= 0.0) continue;
      const double dxu = grid.dxu()(i, j);
      const double dyu = grid.dyu()(i, j);
      const double area_u = dxu * dyu;
      const double a = hu * area_u / (4.0 * dxu * dxu);  // x-gradient part
      const double b = hu * area_u / (4.0 * dyu * dyu);  // y-gradient part

      // Cells: SW = (i, j), SE = (ip, j), NW = (i, j+1), NE = (ip, j+1).
      // Diagonal contribution a + b to each.
      c0(i, j) += a + b;
      c0(ip, j) += a + b;
      c0(i, j + 1) += a + b;
      c0(ip, j + 1) += a + b;
      // Diagonal couplings (dominant): -(a + b).
      cne(i, j) += -(a + b);       // SW -> NE
      csw(ip, j + 1) += -(a + b);  // NE -> SW
      cnw(ip, j) += -(a + b);      // SE -> NW
      cse(i, j + 1) += -(a + b);   // NW -> SE
      // East-west couplings: b - a (vanish for square cells).
      ce(i, j) += b - a;
      cw(ip, j) += b - a;
      ce(i, j + 1) += b - a;
      cw(ip, j + 1) += b - a;
      // North-south couplings: a - b.
      cn(i, j) += a - b;
      cs(i, j + 1) += a - b;
      cn(ip, j) += a - b;
      cs(ip, j + 1) += a - b;
    }
  }
}

void NinePointStencil::apply(const util::Field& x, util::Field& y) const {
  MINIPOP_REQUIRE(x.nx() == nx_ && x.ny() == ny_, "x shape mismatch");
  if (y.nx() != nx_ || y.ny() != ny_) y = util::Field(nx_, ny_);

  const auto& c0 = coeff_[static_cast<int>(Dir::kCenter)];
  const auto& ce = coeff_[static_cast<int>(Dir::kEast)];
  const auto& cw = coeff_[static_cast<int>(Dir::kWest)];
  const auto& cn = coeff_[static_cast<int>(Dir::kNorth)];
  const auto& cs = coeff_[static_cast<int>(Dir::kSouth)];
  const auto& cne = coeff_[static_cast<int>(Dir::kNorthEast)];
  const auto& cnw = coeff_[static_cast<int>(Dir::kNorthWest)];
  const auto& cse = coeff_[static_cast<int>(Dir::kSouthEast)];
  const auto& csw = coeff_[static_cast<int>(Dir::kSouthWest)];

  auto get = [&](int i, int j) -> double {
    if (j < 0 || j >= ny_) return 0.0;
    if (periodic_x_) {
      i = (i % nx_ + nx_) % nx_;
    } else if (i < 0 || i >= nx_) {
      return 0.0;
    }
    return x(i, j);
  };

  for (int j = 0; j < ny_; ++j) {
    const bool interior_j = (j > 0 && j < ny_ - 1);
    for (int i = 0; i < nx_; ++i) {
      if (interior_j && i > 0 && i < nx_ - 1) {
        // Fast path: fully interior (no wrap / boundary checks).
        y(i, j) = c0(i, j) * x(i, j) + ce(i, j) * x(i + 1, j) +
                  cw(i, j) * x(i - 1, j) + cn(i, j) * x(i, j + 1) +
                  cs(i, j) * x(i, j - 1) + cne(i, j) * x(i + 1, j + 1) +
                  cnw(i, j) * x(i - 1, j + 1) + cse(i, j) * x(i + 1, j - 1) +
                  csw(i, j) * x(i - 1, j - 1);
      } else {
        y(i, j) = c0(i, j) * x(i, j) + ce(i, j) * get(i + 1, j) +
                  cw(i, j) * get(i - 1, j) + cn(i, j) * get(i, j + 1) +
                  cs(i, j) * get(i, j - 1) + cne(i, j) * get(i + 1, j + 1) +
                  cnw(i, j) * get(i - 1, j + 1) +
                  cse(i, j) * get(i + 1, j - 1) +
                  csw(i, j) * get(i - 1, j - 1);
      }
    }
  }
}

double NinePointStencil::edge_to_corner_ratio() const {
  double max_edge = 0.0;
  double max_corner = 0.0;
  for (int j = 0; j < ny_; ++j)
    for (int i = 0; i < nx_; ++i) {
      if (!mask_(i, j)) continue;
      for (Dir d : {Dir::kEast, Dir::kWest, Dir::kNorth, Dir::kSouth})
        max_edge = std::max(max_edge, std::abs(coeff(d)(i, j)));
      for (Dir d : {Dir::kNorthEast, Dir::kNorthWest, Dir::kSouthEast,
                    Dir::kSouthWest})
        max_corner = std::max(max_corner, std::abs(coeff(d)(i, j)));
    }
  return max_corner > 0 ? max_edge / max_corner : 0.0;
}

linalg::DenseMatrix NinePointStencil::to_dense() const {
  MINIPOP_REQUIRE(static_cast<long>(nx_) * ny_ <= 100000,
                  "to_dense is for small grids (" << nx_ << "x" << ny_
                                                  << ")");
  const int n = nx_ * ny_;
  linalg::DenseMatrix a(n, n);
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      const int row = j * nx_ + i;
      for (int d = 0; d < kNumDirs; ++d) {
        const auto [di, dj] = kDirOffset[d];
        int ii = i + di;
        const int jj = j + dj;
        if (jj < 0 || jj >= ny_) continue;
        if (periodic_x_) {
          ii = (ii % nx_ + nx_) % nx_;
        } else if (ii < 0 || ii >= nx_) {
          continue;
        }
        a(row, jj * nx_ + ii) += coeff_[d](i, j);
      }
    }
  }
  return a;
}

}  // namespace minipop::grid
