#include "src/grid/decomposition.hpp"

#include <algorithm>
#include <numeric>

#include "src/grid/hilbert.hpp"
#include "src/util/error.hpp"

namespace minipop::grid {

Decomposition::Decomposition(int nx_global, int ny_global, bool periodic_x,
                             const util::MaskArray& mask, int block_nx,
                             int block_ny, int nranks)
    : nx_global_(nx_global),
      ny_global_(ny_global),
      periodic_x_(periodic_x),
      block_nx_(block_nx),
      block_ny_(block_ny),
      nranks_(nranks) {
  MINIPOP_REQUIRE(nx_global >= 1 && ny_global >= 1,
                  nx_global << "x" << ny_global);
  MINIPOP_REQUIRE(block_nx >= 1 && block_ny >= 1,
                  "block " << block_nx << "x" << block_ny);
  MINIPOP_REQUIRE(mask.nx() == nx_global && mask.ny() == ny_global,
                  "mask shape mismatch");
  MINIPOP_REQUIRE(nranks >= 1, "nranks=" << nranks);

  mbx_ = (nx_global + block_nx - 1) / block_nx;
  mby_ = (ny_global + block_ny - 1) / block_ny;
  block_grid_ = util::Array2D<int>(mbx_, mby_, -1);

  // Enumerate blocks; keep those with at least one ocean cell.
  for (int bj = 0; bj < mby_; ++bj) {
    for (int bi = 0; bi < mbx_; ++bi) {
      BlockInfo b;
      b.bi = bi;
      b.bj = bj;
      b.i0 = bi * block_nx;
      b.j0 = bj * block_ny;
      b.nx = std::min(block_nx, nx_global - b.i0);
      b.ny = std::min(block_ny, ny_global - b.j0);
      for (int j = 0; j < b.ny; ++j)
        for (int i = 0; i < b.nx; ++i)
          if (mask(b.i0 + i, b.j0 + j)) ++b.ocean_cells;
      if (b.ocean_cells == 0) continue;  // land-block elimination
      b.id = static_cast<int>(blocks_.size());
      block_grid_(bi, bj) = b.id;
      blocks_.push_back(b);
    }
  }
  MINIPOP_REQUIRE(!blocks_.empty(), "decomposition has no ocean blocks");
  MINIPOP_REQUIRE(nranks <= num_active_blocks(),
                  "nranks=" << nranks << " exceeds active blocks "
                            << num_active_blocks());

  // Hilbert ordering of active blocks.
  const int order = hilbert_order_for(std::max(mbx_, mby_));
  std::vector<int> curve(blocks_.size());
  std::iota(curve.begin(), curve.end(), 0);
  std::vector<std::uint64_t> key(blocks_.size());
  for (std::size_t k = 0; k < blocks_.size(); ++k)
    key[k] = hilbert_d(order, static_cast<std::uint32_t>(blocks_[k].bi),
                       static_cast<std::uint32_t>(blocks_[k].bj));
  std::sort(curve.begin(), curve.end(),
            [&](int a, int b) { return key[a] < key[b]; });

  // Walk the curve and cut into nranks contiguous chunks with nearly equal
  // ocean-cell weight, while leaving exactly one block per remaining rank
  // when blocks run short.
  long total_weight = 0;
  for (const auto& b : blocks_) total_weight += b.ocean_cells;

  rank_blocks_.assign(nranks, {});
  std::size_t pos = 0;
  long assigned_weight = 0;
  for (int r = 0; r < nranks; ++r) {
    const std::size_t blocks_left = blocks_.size() - pos;
    const int ranks_left = nranks - r;
    MINIPOP_REQUIRE(blocks_left >= static_cast<std::size_t>(ranks_left),
                    "ran out of blocks while assigning ranks");
    const double target =
        static_cast<double>(total_weight - assigned_weight) / ranks_left;
    long w = 0;
    while (pos < blocks_.size()) {
      const std::size_t still_left = blocks_.size() - pos;
      if (static_cast<int>(still_left) <= ranks_left - 1) break;
      const long bw = blocks_[curve[pos]].ocean_cells;
      // Take the block if the rank is empty or if taking it overshoots the
      // target by less than leaving it undershoots.
      if (!rank_blocks_[r].empty() &&
          (w + bw) - target > target - w)
        break;
      rank_blocks_[r].push_back(curve[pos]);
      blocks_[curve[pos]].owner = r;
      w += bw;
      ++pos;
    }
    assigned_weight += w;
  }
  MINIPOP_REQUIRE(pos == blocks_.size(), "unassigned blocks remain");
}

int Decomposition::block_id_at(int bi, int bj) const {
  if (bj < 0 || bj >= mby_) return -1;
  if (periodic_x_) {
    bi = (bi % mbx_ + mbx_) % mbx_;
  } else if (bi < 0 || bi >= mbx_) {
    return -1;
  }
  return block_grid_(bi, bj);
}

int Decomposition::neighbor(int id, Dir d) const {
  const auto& b = block(id);
  const auto [di, dj] = kDirOffset[static_cast<int>(d)];
  if (d == Dir::kCenter) return id;
  return block_id_at(b.bi + di, b.bj + dj);
}

int Decomposition::max_halo_width() const {
  int w = std::min(nx_global_, ny_global_);
  for (const auto& b : blocks_) w = std::min({w, b.nx, b.ny});
  return w;
}

void Decomposition::validate_halo(int halo) const {
  for (const auto& b : blocks_) {
    MINIPOP_REQUIRE(b.nx >= halo && b.ny >= halo,
                    "halo " << halo << " wider than block " << b.id
                            << " at (" << b.bi << "," << b.bj << "): "
                            << b.nx << "x" << b.ny
                            << " — rims would overlap out of bounds "
                               "(max usable halo "
                            << max_halo_width() << ")");
  }
}

double Decomposition::load_imbalance() const {
  long max_w = 0;
  long total = 0;
  for (int r = 0; r < nranks_; ++r) {
    long w = 0;
    for (int id : rank_blocks_[r]) w += blocks_[id].ocean_cells;
    max_w = std::max(max_w, w);
    total += w;
  }
  const double mean = static_cast<double>(total) / nranks_;
  return mean > 0 ? static_cast<double>(max_w) / mean : 1.0;
}

double Decomposition::ocean_fraction() const {
  long ocean = 0;
  long swept = 0;
  for (const BlockInfo& b : blocks_) {
    ocean += b.ocean_cells;
    swept += static_cast<long>(b.nx) * b.ny;
  }
  return swept > 0 ? static_cast<double>(ocean) / swept : 1.0;
}

}  // namespace minipop::grid
