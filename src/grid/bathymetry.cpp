#include "src/grid/bathymetry.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace minipop::grid {

namespace {

/// Deterministic lattice hash -> uniform double in [-1, 1).
double lattice_value(std::uint64_t seed, int octave, int xi, int yi) {
  std::uint64_t h = seed;
  h ^= 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(octave + 1);
  h ^= 0xd1b54a32d192ed03ULL * static_cast<std::uint64_t>(xi + 1);
  h ^= 0x94d049bb133111ebULL * static_cast<std::uint64_t>(yi + 1);
  util::SplitMix64 sm(h);
  return 2.0 * (static_cast<double>(sm.next() >> 11) * 0x1.0p-53) - 1.0;
}

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

/// Multi-octave value noise in [-1, 1], periodic in x when requested.
double fractal_noise(std::uint64_t seed, int octaves, bool periodic_x,
                     double u, double v) {
  // u, v in [0, 1) map the grid; base lattice 8x8 per octave doubling.
  double sum = 0.0;
  double amp = 1.0;
  double norm = 0.0;
  int freq = 4;
  for (int o = 0; o < octaves; ++o) {
    double x = u * freq;
    double y = v * freq;
    int x0 = static_cast<int>(std::floor(x));
    int y0 = static_cast<int>(std::floor(y));
    double tx = smoothstep(x - x0);
    double ty = smoothstep(y - y0);
    auto wrap_x = [&](int xi) { return periodic_x ? ((xi % freq) + freq) % freq : xi; };
    double v00 = lattice_value(seed, o, wrap_x(x0), y0);
    double v10 = lattice_value(seed, o, wrap_x(x0 + 1), y0);
    double v01 = lattice_value(seed, o, wrap_x(x0), y0 + 1);
    double v11 = lattice_value(seed, o, wrap_x(x0 + 1), y0 + 1);
    double vx0 = v00 + (v10 - v00) * tx;
    double vx1 = v01 + (v11 - v01) * tx;
    sum += amp * (vx0 + (vx1 - vx0) * ty);
    norm += amp;
    amp *= 0.55;
    freq *= 2;
  }
  return sum / norm;
}

}  // namespace

util::Field flat_bathymetry(const CurvilinearGrid& grid, double depth) {
  MINIPOP_REQUIRE(depth > 0, "depth=" << depth);
  return util::Field(grid.nx(), grid.ny(), depth);
}

util::Field bowl_bathymetry(const CurvilinearGrid& grid, double max_depth) {
  MINIPOP_REQUIRE(max_depth > 0, "max_depth=" << max_depth);
  const int nx = grid.nx();
  const int ny = grid.ny();
  util::Field depth(nx, ny, 0.0);
  for (int j = 1; j < ny - 1; ++j) {
    for (int i = 1; i < nx - 1; ++i) {
      double u = 2.0 * (i + 0.5) / nx - 1.0;
      double v = 2.0 * (j + 0.5) / ny - 1.0;
      double r2 = u * u + v * v;
      depth(i, j) = std::max(0.0, max_depth * (1.0 - 0.9 * r2));
    }
  }
  return depth;
}

util::Field synthetic_earth_bathymetry(const CurvilinearGrid& grid,
                                       const BathymetryOptions& opt) {
  MINIPOP_REQUIRE(opt.land_fraction >= 0.0 && opt.land_fraction < 0.95,
                  "land_fraction=" << opt.land_fraction);
  MINIPOP_REQUIRE(opt.max_depth > opt.shelf_depth && opt.shelf_depth > 0,
                  "depths " << opt.shelf_depth << ".." << opt.max_depth);
  const int nx = grid.nx();
  const int ny = grid.ny();

  // Height field in [-1, 1]; land will be the highest cells.
  util::Field height(nx, ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      height(i, j) =
          fractal_noise(opt.seed, opt.noise_octaves, grid.periodic_x(),
                        (i + 0.5) / nx, (j + 0.5) / ny);

  // Threshold selecting the requested land fraction.
  std::vector<double> sorted(height.flat().begin(), height.flat().end());
  std::size_t k = static_cast<std::size_t>(
      (1.0 - opt.land_fraction) * static_cast<double>(sorted.size()));
  k = std::min(k, sorted.size() - 1);
  std::nth_element(sorted.begin(), sorted.begin() + k, sorted.end());
  const double threshold = sorted[k];

  util::Field depth(nx, ny, 0.0);
  // Width of the shelf transition in height units.
  const double spread = 0.35;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      double h = height(i, j);
      if (h >= threshold) continue;  // land
      double t = std::min(1.0, (threshold - h) / spread);
      double profile = std::pow(t, 0.8);
      depth(i, j) =
          opt.shelf_depth + (opt.max_depth - opt.shelf_depth) * profile;
    }
  }

  util::Xoshiro256 rng(opt.seed ^ 0xABCDEF1234567890ULL);

  // Scatter islands (small all-land patches) over open ocean.
  const double grid_scale =
      static_cast<double>(nx) * ny / (320.0 * 384.0);
  const int n_islands = std::max(
      0, static_cast<int>(std::lround(opt.islands_per_1deg_grid * grid_scale)));
  for (int isl = 0; isl < n_islands; ++isl) {
    int ci = static_cast<int>(rng.below(static_cast<std::uint64_t>(nx)));
    int cj = static_cast<int>(rng.below(static_cast<std::uint64_t>(ny)));
    int radius = 1 + static_cast<int>(rng.below(3));
    for (int dj = -radius; dj <= radius; ++dj) {
      for (int di = -radius; di <= radius; ++di) {
        if (di * di + dj * dj > radius * radius) continue;
        int ii = grid.periodic_x() ? ((ci + di) % nx + nx) % nx : ci + di;
        int jj = cj + dj;
        if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) continue;
        depth(ii, jj) = 0.0;
      }
    }
  }

  // Carve narrow straits: short one/two-cell-wide channels at random
  // positions and orientations, re-opened to shelf depth. These create
  // Bering-strait-like passages through land.
  for (int s = 0; s < opt.straits; ++s) {
    int ci = static_cast<int>(rng.below(static_cast<std::uint64_t>(nx)));
    int cj = 2 + static_cast<int>(
                     rng.below(static_cast<std::uint64_t>(std::max(1, ny - 4))));
    bool horizontal = rng.below(2) == 0;
    int len = 8 + static_cast<int>(rng.below(24));
    int width = 1 + static_cast<int>(rng.below(2));
    for (int a = 0; a < len; ++a) {
      for (int w = 0; w < width; ++w) {
        int ii = horizontal ? ci + a : ci + w;
        int jj = horizontal ? cj + w : cj + a;
        if (grid.periodic_x()) ii = (ii % nx + nx) % nx;
        if (ii < 0 || ii >= nx || jj < 1 || jj >= ny - 1) continue;
        if (depth(ii, jj) == 0.0) depth(ii, jj) = opt.shelf_depth;
      }
    }
  }

  // Enforced land rows at the southern/northern boundary (closed domain).
  int polar = opt.polar_land_rows;
  if (polar < 0) polar = std::max(1, ny / 48);
  for (int j = 0; j < polar; ++j)
    for (int i = 0; i < nx; ++i) {
      depth(i, j) = 0.0;
      depth(i, ny - 1 - j) = 0.0;
    }
  if (!grid.periodic_x()) {
    for (int j = 0; j < ny; ++j) {
      depth(0, j) = 0.0;
      depth(nx - 1, j) = 0.0;
    }
  }

  return depth;
}

util::MaskArray ocean_mask(const util::Field& depth) {
  util::MaskArray mask(depth.nx(), depth.ny(), 0);
  for (int j = 0; j < depth.ny(); ++j)
    for (int i = 0; i < depth.nx(); ++i)
      mask(i, j) = depth(i, j) > 0.0 ? 1 : 0;
  return mask;
}

double land_fraction(const util::MaskArray& mask) {
  if (mask.size() == 0) return 0.0;
  long land = 0;
  for (auto v : mask)
    if (v == 0) ++land;
  return static_cast<double>(land) / static_cast<double>(mask.size());
}

long count_ocean(const util::MaskArray& mask) {
  long ocean = 0;
  for (auto v : mask)
    if (v != 0) ++ocean;
  return ocean;
}

}  // namespace minipop::grid
