// Synthetic bathymetry (ocean depth) fields.
//
// The paper's operator is defined by the real-Earth depth field H with
// continents, thousands of islands, narrow straits and coastal shelves —
// exactly the features that make geometric multigrid awkward (paper §4.1)
// and that exercise the solvers' robustness. We cannot ship the
// proprietary POP input datasets, so we generate deterministic synthetic
// bathymetry with the same qualitative features: multi-octave continents
// with a target land fraction, shelf profiles near coasts, scattered
// islands, and carved one-to-two-cell-wide straits. Depth is in meters;
// land cells have depth 0.
#pragma once

#include <cstdint>

#include "src/grid/curvilinear_grid.hpp"
#include "src/util/array2d.hpp"

namespace minipop::grid {

struct BathymetryOptions {
  std::uint64_t seed = 2015;
  double max_depth = 5500.0;    ///< deepest basin [m]
  double shelf_depth = 100.0;   ///< shallowest ocean [m]
  double land_fraction = 0.25;  ///< target land cell fraction (paper: .25)
  int noise_octaves = 5;
  /// Island count for a 320x384 grid; scaled with cell count.
  int islands_per_1deg_grid = 60;
  /// Number of carved narrow straits through land.
  int straits = 8;
  /// Rows of enforced land at the south/north edges (closed boundaries);
  /// 0 disables. Chosen automatically when negative.
  int polar_land_rows = -1;
};

/// Constant-depth ocean everywhere (no land). Unit tests and EVP
/// stability studies.
util::Field flat_bathymetry(const CurvilinearGrid& grid, double depth);

/// Parabolic basin: deep center, shallow rim, one-cell land border.
util::Field bowl_bathymetry(const CurvilinearGrid& grid, double max_depth);

/// Deterministic continents/islands/straits field described above.
util::Field synthetic_earth_bathymetry(const CurvilinearGrid& grid,
                                       const BathymetryOptions& opt = {});

/// 1 where depth > 0 (ocean), 0 where land.
util::MaskArray ocean_mask(const util::Field& depth);

/// Fraction of land cells.
double land_fraction(const util::MaskArray& mask);

/// Number of ocean cells.
long count_ocean(const util::MaskArray& mask);

}  // namespace minipop::grid
