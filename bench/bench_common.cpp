#include "bench_common.hpp"

#include <cmath>
#include <iostream>

#include "src/model/ocean_model.hpp"
#include "src/util/rng.hpp"

namespace minipop::bench {

LiveCase make_live_case(const std::string& which, double scale,
                        int block_size, std::uint64_t seed) {
  LiveCase c;
  grid::GridSpec spec = which == "0.1deg" ? grid::pop_0p1deg_spec(scale)
                                          : grid::pop_1deg_spec(scale);
  c.grid = std::make_unique<grid::CurvilinearGrid>(spec);
  grid::BathymetryOptions bopt;
  bopt.seed = seed;
  c.depth = grid::synthetic_earth_bathymetry(*c.grid, bopt);
  c.dt = model::recommended_barotropic_dt(*c.grid);
  const double theta = 0.6;
  const double phi = 1.0 / (9.806 * theta * theta * c.dt * c.dt);
  c.stencil = std::make_unique<grid::NinePointStencil>(*c.grid, c.depth,
                                                       phi);
  auto mask = c.stencil->mask();
  c.decomp = std::make_unique<grid::Decomposition>(
      c.grid->nx(), c.grid->ny(), c.grid->periodic_x(), mask, block_size,
      block_size, 1);
  c.halo = std::make_unique<comm::HaloExchanger>(*c.decomp);

  // Physically-scaled RHS: smooth random surface forcing.
  c.rhs_global = util::Field(c.grid->nx(), c.grid->ny(), 0.0);
  util::Xoshiro256 rng(seed ^ 0x5bd1e995);
  for (int j = 0; j < c.grid->ny(); ++j)
    for (int i = 0; i < c.grid->nx(); ++i)
      if (mask(i, j))
        c.rhs_global(i, j) =
            phi * c.grid->area_t()(i, j) * 0.1 * rng.uniform(-1, 1);
  return c;
}

LiveSolveResult measure_iterations(LiveCase& c,
                                   const solver::SolverConfig& config,
                                   int solves) {
  comm::SerialComm comm;
  solver::BarotropicSolver bs(comm, *c.halo, *c.grid, c.depth, *c.stencil,
                              *c.decomp, config);
  LiveSolveResult out;
  if (bs.lanczos()) out.lanczos_steps = bs.lanczos()->steps;
  if (config.preconditioner == solver::PreconditionerKind::kBlockEvp) {
    auto* evp = dynamic_cast<evp::BlockEvpPreconditioner*>(
        &bs.preconditioner());
    if (evp) out.precond_setup_flops = evp->setup_flops();
  }

  comm::DistField b(*c.decomp, 0), x(*c.decomp, 0);
  b.load_global(c.rhs_global);
  const auto snapshot = comm.costs().counters();
  util::Xoshiro256 rng(99);
  long total_iters = 0;
  for (int s = 0; s < solves; ++s) {
    auto stats = bs.solve(comm, b, x);
    out.all_converged = out.all_converged && stats.converged;
    total_iters += stats.iterations;
    // Perturb the RHS like an evolving ocean state would (but keep the
    // previous x as warm start, as POP does).
    for (int lb = 0; lb < b.num_local_blocks(); ++lb) {
      const auto& info = b.info(lb);
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i)
          b.at(lb, i, j) *= 1.0 + 0.05 * rng.uniform(-1, 1);
    }
  }
  out.mean_iterations = static_cast<double>(total_iters) / solves;
  out.costs = comm.costs().since(snapshot);
  return out;
}

solver::SolverConfig config_for(perf::Config c, double rel_tolerance,
                                int evp_max_tile) {
  solver::SolverConfig cfg;
  cfg.solver = perf::is_pcsi(c) ? solver::SolverKind::kPcsi
                                : solver::SolverKind::kChronGear;
  cfg.preconditioner = perf::is_evp(c)
                           ? solver::PreconditionerKind::kBlockEvp
                           : solver::PreconditionerKind::kDiagonal;
  cfg.options.rel_tolerance = rel_tolerance;
  cfg.evp.max_tile = evp_max_tile;
  return cfg;
}

void print_header(const std::string& experiment, const std::string& what) {
  std::cout << "\n==============================================================\n"
            << experiment << " — " << what << "\n"
            << "==============================================================\n";
}

}  // namespace minipop::bench
