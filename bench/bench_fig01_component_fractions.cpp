// Paper Fig. 1: percentage of 0.1-degree POP execution time per
// component as core count grows, with the default diagonal-preconditioned
// ChronGear solver. The barotropic solver's share climbs from ~5% at 470
// cores to ~50% at 16,875 — the paper's motivating observation.
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto grid = perf::pop_0p1deg_case();
  perf::PopTimingModel model(perf::yellowstone_profile(), grid,
                             perf::paper_iteration_model(grid));

  bench::print_header(
      "Figure 1",
      "component fractions of 0.1deg POP, ChronGear+diagonal, Yellowstone");

  util::Table t({"cores", "baroclinic", "barotropic", "barotropic(paper)"});
  struct Row {
    int p;
    const char* paper;
  };
  for (auto [p, paper] : {Row{470, "~5%"}, Row{1125, ""}, Row{2700, ""},
                          Row{5400, ""}, Row{10800, ""},
                          Row{16875, "~50%"}}) {
    const double frac =
        model.barotropic_fraction(perf::Config::kCgDiag, p);
    t.row().add_int(p).add_pct(1.0 - frac).add_pct(frac).add(paper);
  }
  t.print(std::cout);
  std::cout << "\nShape check: the barotropic share grows monotonically "
               "with cores while the\nbaroclinic share falls — the "
               "communication bottleneck of paper Sec. 2.\n";
  (void)cli;
  return 0;
}
