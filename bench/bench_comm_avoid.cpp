// Communication-avoiding P-CSI benchmark (DESIGN.md §13): measured
// halo-round reduction from depth-k ghost zones on a 4-rank ThreadComm
// team, plus the modeled Yellowstone/Edison crossover curves the depth
// autotuner optimizes over.
//
// Measured part: the same bowl-with-island problem bench_batch uses
// (small per-rank subdomains — the strong-scaling regime where message
// latency rivals stencil flops), solved at halo depth k in {1, 2, 3, 4}.
// Each row reports wall time, per-solve halo rounds / messages / bytes,
// total and redundant flops, and a bitwise-identity flag against the
// depth-1 solve — the depth-k schedule reproduces the depth-1 bits
// exactly, so the rounds drop ~k x while the answer does not move.
//
// Modeled part: comm_avoid_iteration_costs() swept over p in
// {1024..16384} ranks and k in {1..4} on the paper's 0.1-degree grid
// for the Yellowstone and Edison profiles, with choose_halo_depth()'s
// pick per p — the crossover from k=1 (compute-bound, redundant rim
// flops dominate) to k>1 (latency-bound, message count dominates).
//
// Run from the repo root so BENCH_comm_avoid.json lands there:
//
//   ./build/bench/bench_comm_avoid [output.json]
//   ./build/bench/bench_comm_avoid --smoke  # CI: k in {1,2}, asserts
//                                           # identity and rounds
//                                           # ratio >= 1.8 at k=2
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/perf/cost_equations.hpp"
#include "src/util/rng.hpp"

using namespace minipop;

namespace {

/// Bowl-with-island bathymetry, 16 blocks of 12x10 over 4 ranks — the
/// same latency-bound regime as bench_batch. Interior blocks are 12x10,
/// so every depth up to kMaxHaloDepth = 4 fits.
struct Case {
  std::unique_ptr<grid::CurvilinearGrid> grid;
  util::Field depth;
  std::unique_ptr<grid::NinePointStencil> stencil;
  std::unique_ptr<grid::Decomposition> decomp;
  std::unique_ptr<comm::HaloExchanger> halo;

  Case(int nx, int ny, int bx, int by, int nranks) {
    grid::GridSpec spec;
    spec.kind = grid::GridKind::kUniform;
    spec.nx = nx;
    spec.ny = ny;
    spec.periodic_x = false;
    spec.dx = 1.0e4;
    spec.dy = 1.2e4;
    grid = std::make_unique<grid::CurvilinearGrid>(spec);
    depth = grid::bowl_bathymetry(*grid, 4000.0);
    for (int j = ny / 2 - 1; j <= ny / 2 + 1; ++j)
      for (int i = nx / 2 - 2; i <= nx / 2 + 2; ++i)
        depth(i, j) = 0.0;  // island in the bowl
    stencil = std::make_unique<grid::NinePointStencil>(*grid, depth, 1e-6);
    decomp = std::make_unique<grid::Decomposition>(
        nx, ny, false, stencil->mask(), bx, by, nranks);
    halo = std::make_unique<comm::HaloExchanger>(*decomp);
  }

  util::Field random_rhs(std::uint64_t seed) const {
    util::Xoshiro256 rng(seed);
    util::Field b(grid->nx(), grid->ny(), 0.0);
    for (int j = 0; j < grid->ny(); ++j)
      for (int i = 0; i < grid->nx(); ++i)
        if (stencil->mask()(i, j)) b(i, j) = rng.uniform(-1, 1);
    return b;
  }
};

solver::SolverConfig pcsi_config(int halo_depth) {
  solver::SolverConfig cfg;
  cfg.solver = solver::SolverKind::kPcsi;
  cfg.preconditioner = solver::PreconditionerKind::kDiagonal;
  cfg.options.rel_tolerance = 1e-10;
  cfg.options.halo_depth = halo_depth;
  cfg.resilient = false;
  cfg.lanczos.rel_tolerance = 0.02;
  return cfg;
}

struct Row {
  int depth = 0;
  double seconds = 0;        ///< best-of-repeats, one solve
  int iterations = 0;
  bool identity_ok = true;   ///< bits == the depth-1 solve's bits
  // Rank-0 per-solve communication and arithmetic counts.
  std::uint64_t halo_exchanges = 0, p2p_messages = 0, p2p_bytes = 0;
  std::uint64_t flops = 0, redundant_flops = 0;
};

/// Solve the same system at `depth` on `nranks` ranks; returns rank-0
/// counters, best-of-`repeats` wall time, and the gathered solution in
/// `x_out`.
Row run_depth(const Case& c, int nranks, int depth, int repeats,
              util::Field& x_out) {
  using clock = std::chrono::steady_clock;
  Row row;
  row.depth = depth;
  const util::Field rhs = c.random_rhs(4000);
  x_out = util::Field(c.grid->nx(), c.grid->ny(), 0.0);

  comm::ThreadTeam team(nranks);
  team.run([&](comm::Communicator& comm) {
    const int r = comm.rank();
    solver::BarotropicSolver solver(comm, *c.halo, *c.grid, c.depth,
                                    *c.stencil, *c.decomp,
                                    pcsi_config(depth));
    comm::DistField b(*c.decomp, r), x(*c.decomp, r);
    b.load_global(rhs);
    for (int rep = 0; rep < repeats; ++rep) {
      x.fill(0.0);
      (void)comm.allreduce_sum(0.0);  // align ranks before timing
      const auto snap = comm.costs().counters();
      const auto t0 = clock::now();
      const auto stats = solver.solve(comm, b, x);
      const double t =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (r == 0) {
        if (rep == 0) {
          const auto costs = comm.costs().since(snap);
          row.iterations = stats.iterations;
          row.halo_exchanges = costs.halo_exchanges;
          row.p2p_messages = costs.p2p_messages;
          row.p2p_bytes = costs.p2p_bytes;
          row.flops = costs.flops;
          row.redundant_flops = costs.redundant_flops;
        }
        row.seconds = rep == 0 ? t : std::min(row.seconds, t);
      }
    }
    x.store_global(x_out);
  });
  return row;
}

struct ModelPoint {
  std::string machine;
  int ranks = 0;
  int depth = 0;
  double ocean_fraction = 1.0;
  perf::IterationCosts costs;
  int chosen = 0;  ///< choose_halo_depth() for this (machine, ranks)
};

std::vector<ModelPoint> model_curves() {
  const long points = 3600L * 2400;  // the paper's 0.1-degree grid
  const int check_frequency = 10;
  const std::pair<std::string, perf::MachineProfile> machines[] = {
      {"yellowstone", perf::yellowstone_profile()},
      {"edison", perf::edison_profile()}};
  // ofrac = 1 is the dense sweep; 0.65 is roughly Earth's ocean share
  // of the active blocks — under span execution the cheaper sweeps pull
  // the latency/redundant-work crossover toward deeper ghost zones.
  const double ocean_fractions[] = {1.0, 0.65};
  std::vector<ModelPoint> out;
  for (const auto& [name, m] : machines)
    for (double ofrac : ocean_fractions)
      for (int p : {1024, 2048, 4096, 8192, 16384}) {
        const int chosen = perf::choose_halo_depth(
            m, perf::Config::kPcsiDiag, points, p, check_frequency, 4,
            ofrac);
        for (int k = 1; k <= 4; ++k) {
          ModelPoint pt;
          pt.machine = name;
          pt.ranks = p;
          pt.depth = k;
          pt.ocean_fraction = ofrac;
          pt.costs = perf::comm_avoid_iteration_costs(
              m, perf::Config::kPcsiDiag, points, p, check_frequency, k,
              ofrac);
          pt.chosen = chosen;
          out.push_back(pt);
        }
      }
  return out;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                const std::vector<ModelPoint>& model) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"comm_avoid\",\n"
     << "  \"solver\": \"pcsi+diagonal\",\n  \"measured\": [\n";
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const Row& w = rows[k];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"halo_depth\": %d, \"seconds\": %.6e, \"iterations\": %d, "
        "\"identity_ok\": %s, \"halo_exchanges\": %llu, "
        "\"p2p_messages\": %llu, \"p2p_bytes\": %llu, \"flops\": %llu, "
        "\"redundant_flops\": %llu}%s\n",
        w.depth, w.seconds, w.iterations, w.identity_ok ? "true" : "false",
        static_cast<unsigned long long>(w.halo_exchanges),
        static_cast<unsigned long long>(w.p2p_messages),
        static_cast<unsigned long long>(w.p2p_bytes),
        static_cast<unsigned long long>(w.flops),
        static_cast<unsigned long long>(w.redundant_flops),
        k + 1 < rows.size() ? "," : "");
    os << buf;
  }
  os << "  ],\n  \"model\": [\n";
  for (std::size_t k = 0; k < model.size(); ++k) {
    const ModelPoint& w = model[k];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"machine\": \"%s\", \"ranks\": %d, \"halo_depth\": %d, "
        "\"ocean_fraction\": %.2f, "
        "\"computation\": %.6e, \"halo\": %.6e, \"reduction\": %.6e, "
        "\"total\": %.6e, \"chosen_depth\": %d}%s\n",
        w.machine.c_str(), w.ranks, w.depth, w.ocean_fraction,
        w.costs.computation, w.costs.halo, w.costs.reduction,
        w.costs.total(), w.chosen, k + 1 < model.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_comm_avoid.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0)
      smoke = true;
    else
      json_path = argv[a];
  }

  bench::print_header("comm_avoid",
                      "depth-k ghost zones: measured halo-round "
                      "reduction + modeled depth crossover");

  const std::vector<int> depths =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 3, 4};
  const int nranks = 4;
  const int repeats = smoke ? 2 : 3;
  Case c(48, 40, 12, 10, nranks);

  std::vector<Row> rows;
  util::Field x_base;
  std::printf("%6s %12s %6s %9s %9s %12s %14s %9s %6s\n", "depth",
              "seconds", "iters", "rounds", "msgs", "flops",
              "redundant", "round_x", "bits");
  for (const int depth : depths) {
    util::Field x;
    Row row = run_depth(c, nranks, depth, repeats, x);
    if (depth == 1) {
      x_base = x;
    } else {
      for (int j = 0; j < x.ny() && row.identity_ok; ++j)
        for (int i = 0; i < x.nx(); ++i)
          if (x(i, j) != x_base(i, j)) {
            row.identity_ok = false;
            break;
          }
    }
    rows.push_back(row);
    const double round_ratio =
        static_cast<double>(rows.front().halo_exchanges) /
        static_cast<double>(row.halo_exchanges);
    std::printf("%6d %12.3e %6d %9llu %9llu %12llu %14llu %8.2fx %6s\n",
                row.depth, row.seconds, row.iterations,
                static_cast<unsigned long long>(row.halo_exchanges),
                static_cast<unsigned long long>(row.p2p_messages),
                static_cast<unsigned long long>(row.flops),
                static_cast<unsigned long long>(row.redundant_flops),
                round_ratio, row.identity_ok ? "ok" : "DIFFER");
  }

  const std::vector<ModelPoint> model = model_curves();
  std::printf("\nmodeled per-iteration cost, 0.1-degree grid "
              "(3600x2400), check frequency 10:\n");
  std::printf("%12s %7s %6s %6s %12s %12s %12s %12s %7s\n", "machine",
              "ranks", "k", "ofrac", "compute_s", "halo_s", "reduce_s",
              "total_s", "chosen");
  for (const ModelPoint& w : model)
    std::printf("%12s %7d %6d %6.2f %12.3e %12.3e %12.3e %12.3e %7d\n",
                w.machine.c_str(), w.ranks, w.depth, w.ocean_fraction,
                w.costs.computation, w.costs.halo, w.costs.reduction,
                w.costs.total(), w.chosen);

  write_json(json_path, rows, model);
  std::printf("\nwrote %s\n", json_path.c_str());

  bool ok = true;
  for (const Row& w : rows) {
    if (!w.identity_ok) {
      std::printf("FAIL: depth-%d solve differs bitwise from depth-1\n",
                  w.depth);
      ok = false;
    }
    if (w.depth > 1 && w.redundant_flops == 0) {
      std::printf("FAIL: depth-%d solve reports no redundant flops\n",
                  w.depth);
      ok = false;
    }
  }
  if (rows.front().redundant_flops != 0) {
    std::printf("FAIL: depth-1 solve reports redundant flops\n");
    ok = false;
  }
  for (const Row& w : rows) {
    if (w.depth != 2) continue;
    const double ratio = static_cast<double>(rows.front().halo_exchanges) /
                         static_cast<double>(w.halo_exchanges);
    if (ratio < 1.8) {
      std::printf("FAIL: halo-round reduction %.2fx < 1.8x at k=2\n",
                  ratio);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
