// Ablation: halo width. POP keeps two halo layers (paper §2.2) so a
// non-diagonal preconditioner still needs only one boundary update per
// iteration. We measure the live per-exchange byte volume for widths 1
// and 2 on a multi-block decomposition, and the modeled cost impact at
// scale (the 8N/sqrt(p) term of Eqs. 2/3 doubles with the halo width,
// but the 4-message latency floor does not change).
#include <iostream>

#include "bench_common.hpp"
#include "src/solver/chron_gear.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto c = bench::make_live_case("1deg", cli.get_double("scale", 0.2), 12);

  bench::print_header("Ablation: halo width",
                      "live bytes per halo exchange (multi-rank "
                      "decomposition of the 1deg-scaled grid)");
  // Re-decompose across 4 virtual ranks so exchanges actually move data.
  auto mask = c.stencil->mask();
  grid::Decomposition d4(c.grid->nx(), c.grid->ny(), c.grid->periodic_x(),
                         mask, 12, 12, 4);
  comm::HaloExchanger hx(d4);
  util::Table t({"halo width", "bytes sent per exchange (rank 0)"});
  for (int h : {1, 2, 3}) {
    comm::DistField f(d4, 0, h);
    t.row().add_int(h).add_int(
        static_cast<long>(hx.bytes_sent_per_exchange(f)));
  }
  t.print(std::cout);

  bench::print_header("Ablation: halo width",
                      "modeled ChronGear halo seconds/day (0.1deg, "
                      "Yellowstone) if the per-iteration volume scaled "
                      "with width");
  auto grid = perf::pop_0p1deg_case();
  perf::PopTimingModel model(perf::yellowstone_profile(), grid,
                             perf::paper_iteration_model(grid));
  util::Table t2({"cores", "width 1", "width 2 (POP)", "width 4"});
  for (int p : {470, 2700, 16875}) {
    auto base = model.barotropic_per_day(perf::Config::kCgDiag, p);
    const double msgs =
        4.0 * perf::yellowstone_profile().alpha_p2p *
        model.iterations_of(perf::Config::kCgDiag, p) * grid.steps_per_day;
    const double bytes = base.halo - msgs;
    auto& row = t2.row();
    row.add_int(p);
    for (double w : {0.5, 1.0, 2.0}) row.add(msgs + bytes * w, 3);
  }
  t2.print(std::cout);
  std::cout << "\nShape check: volume scales linearly with width but the "
               "latency floor\ndominates at high core counts — wide halos "
               "are cheap there, which is why POP\ncan afford width 2 and "
               "save a second boundary update per iteration.\n";
  return 0;
}
