// Land-span execution harness (DESIGN.md §14): masked-twin vs span
// kernel rates and end-to-end P-CSI solves on a low-land and a
// high-land synthetic bathymetry, with the bitwise-identity contract
// re-checked on every run and the active/swept cost counters audited
// against the decomposition's ocean fraction. Writes BENCH_spans.json:
//
//   ./build/bench/bench_spans [--smoke] [output.json]
//
// --smoke runs the CI gate: identity + counter audit plus the
// masked-norm residual sweep (residual_norm2_9, the convergence-check
// path) on the >= 40%-land case, asserting the span kernel is at least
// 1.25x the masked twin. Wall times characterize THIS machine.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/model/ocean_model.hpp"
#include "src/solver/dist_operator.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/kernels.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/pcsi.hpp"
#include "src/solver/preconditioner.hpp"
#include "src/solver/span_plan.hpp"
#include "src/util/rng.hpp"

using namespace minipop;
namespace mk = solver::kernels;

namespace {

/// Best-of-repeats timing: calibrates the batch size to ~20 ms, then
/// reports the fastest of several batches (per single call, seconds).
template <typename F>
double time_best(F&& fn, int repeats = 5) {
  using clock = std::chrono::steady_clock;
  auto seconds_for = [&](int reps) {
    const auto t0 = clock::now();
    for (int k = 0; k < reps; ++k) fn();
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  int reps = 1;
  double t = seconds_for(reps);
  while (t < 0.02 && reps < (1 << 20)) {
    reps *= 2;
    t = seconds_for(reps);
  }
  double best = t / reps;
  for (int k = 1; k < repeats; ++k)
    best = std::min(best, seconds_for(reps) / reps);
  return best;
}

/// One synthetic case: scaled 1-degree grid with a target land
/// fraction, the whole grid as ONE block (kernel timing without block
/// edges in the hot loop) plus a production-like 32-cell block
/// decomposition for the end-to-end solves.
struct Case {
  std::string name;
  std::unique_ptr<grid::CurvilinearGrid> grid;
  util::Field depth;
  std::unique_ptr<grid::NinePointStencil> stencil;
  std::unique_ptr<grid::Decomposition> one_block;
  std::unique_ptr<grid::Decomposition> blocks;
  util::Field rhs_global;
  double land = 0.0;  ///< measured mask land fraction
};

Case make_case(const std::string& name, double land_target, double scale,
               std::uint64_t seed) {
  Case c;
  c.name = name;
  c.grid = std::make_unique<grid::CurvilinearGrid>(
      grid::pop_1deg_spec(scale));
  grid::BathymetryOptions bopt;
  bopt.seed = seed;
  bopt.land_fraction = land_target;
  c.depth = grid::synthetic_earth_bathymetry(*c.grid, bopt);
  const double dt = model::recommended_barotropic_dt(*c.grid);
  const double theta = 0.6;
  const double phi = 1.0 / (9.806 * theta * theta * dt * dt);
  c.stencil = std::make_unique<grid::NinePointStencil>(*c.grid, c.depth,
                                                       phi);
  const auto& mask = c.stencil->mask();
  c.land = grid::land_fraction(mask);
  const int nx = c.grid->nx(), ny = c.grid->ny();
  c.one_block = std::make_unique<grid::Decomposition>(
      nx, ny, c.grid->periodic_x(), mask, nx, ny, 1);
  c.blocks = std::make_unique<grid::Decomposition>(
      nx, ny, c.grid->periodic_x(), mask, 32, 32, 1);
  c.rhs_global = util::Field(nx, ny, 0.0);
  util::Xoshiro256 rng(seed ^ 0x5bd1e995);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (mask(i, j))
        c.rhs_global(i, j) =
            phi * c.grid->area_t()(i, j) * 0.1 * rng.uniform(-1, 1);
  return c;
}

struct KernelPair {
  std::string name;
  double masked_s = 0;  ///< seconds per masked-twin call
  double span_s = 0;    ///< seconds per span call
  double bytes_per_point = 0;
  double points = 0;
  double speedup() const { return masked_s / span_s; }
  double masked_gbs() const {
    return points * bytes_per_point / masked_s / 1e9;
  }
  /// GB/s-EQUIVALENT: same full-sweep traffic convention as the masked
  /// row, so the span/masked ratio IS the land-skip speedup.
  double span_gbs() const {
    return points * bytes_per_point / span_s / 1e9;
  }
};

struct SolvePair {
  std::string case_name;
  int iterations = 0;
  double span_on_s = 0;
  double span_off_s = 0;
  double speedup() const { return span_off_s / span_on_s; }
};

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "IDENTITY FAILURE: %s\n", what);
    ++failures;
  }
}

void expect_ocean_equal(const grid::Decomposition& d,
                        const util::MaskArray& mask,
                        const comm::DistField& a, const comm::DistField& b,
                        const char* what) {
  for (int lb = 0; lb < a.num_local_blocks(); ++lb) {
    const auto& info = a.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        if (mask(info.i0 + i, info.j0 + j) &&
            a.at(lb, i, j) != b.at(lb, i, j)) {
          check(false, what);
          return;
        }
  }
  (void)d;
}

/// Per-kernel masked-vs-span rates on the case's whole-grid block, with
/// every pair's outputs cross-checked bitwise before timing.
std::vector<KernelPair> kernel_pairs(Case& c, bool smoke_only) {
  comm::SerialComm comm;
  comm::HaloExchanger halo(*c.one_block);
  solver::DistOperator op(*c.stencil, *c.one_block, 0);
  const auto& mask = op.block_mask(0);
  const solver::BlockSpans& bs = (*op.span_plan())[0];
  const int* ro = bs.row_offset();
  const mk::Span* sp = bs.spans();

  comm::DistField x(*c.one_block, 0), y(*c.one_block, 0),
      b(*c.one_block, 0), r_m(*c.one_block, 0), r_s(*c.one_block, 0),
      z(*c.one_block, 0);
  x.load_global(c.rhs_global);
  b.load_global(c.rhs_global);
  z.load_global(c.rhs_global);
  halo.exchange(comm, x);
  const auto& info = x.info(0);
  const double points = static_cast<double>(info.nx) * info.ny;
  const mk::Stencil9 st{op.block_coeff(0, grid::Dir::kCenter).data(),
                        op.block_coeff(0, grid::Dir::kEast).data(),
                        op.block_coeff(0, grid::Dir::kWest).data(),
                        op.block_coeff(0, grid::Dir::kNorth).data(),
                        op.block_coeff(0, grid::Dir::kSouth).data(),
                        op.block_coeff(0, grid::Dir::kNorthEast).data(),
                        op.block_coeff(0, grid::Dir::kNorthWest).data(),
                        op.block_coeff(0, grid::Dir::kSouthEast).data(),
                        op.block_coeff(0, grid::Dir::kSouthWest).data(),
                        op.block_coeff(0, grid::Dir::kCenter).nx()};
  volatile double sink = 0;

  std::vector<KernelPair> out;
  auto add = [&](const std::string& name, double bytes, double masked_s,
                 double span_s) {
    out.push_back({name, masked_s, span_s, bytes, points});
    std::printf("  %-22s masked %8.3f ns/pt  span %8.3f ns/pt  %5.2fx\n",
                name.c_str(), masked_s / points * 1e9,
                span_s / points * 1e9, out.back().speedup());
  };

  // The convergence-check sweep (fused residual + masked norm²): the
  // smoke gate's metric. Identity first, then rates.
  const double n_m = mk::residual_norm2_9(
      st, mask.data(), mask.nx(), info.nx, info.ny, b.interior(0),
      b.stride(0), x.interior(0), x.stride(0), r_m.interior(0),
      r_m.stride(0), 0.0);
  const double n_s = mk::residual_norm2_9_span(
      st, ro, sp, info.ny, b.interior(0), b.stride(0), x.interior(0),
      x.stride(0), r_s.interior(0), r_s.stride(0), 0.0);
  check(n_m == n_s, "residual_norm2_9 reduced norm");
  expect_ocean_equal(*c.one_block, c.stencil->mask(), r_m, r_s,
                     "residual_norm2_9 residual plane");
  add("residual_norm2_9", 97,
      time_best([&] {
        sink = mk::residual_norm2_9(st, mask.data(), mask.nx(), info.nx,
                                    info.ny, b.interior(0), b.stride(0),
                                    x.interior(0), x.stride(0),
                                    r_m.interior(0), r_m.stride(0), 0.0);
      }),
      time_best([&] {
        sink = mk::residual_norm2_9_span(st, ro, sp, info.ny,
                                         b.interior(0), b.stride(0),
                                         x.interior(0), x.stride(0),
                                         r_s.interior(0), r_s.stride(0),
                                         0.0);
      }));
  if (smoke_only) return out;

  // Residual sweep without the norm.
  mk::residual9(st, info.nx, info.ny, b.interior(0), b.stride(0),
                x.interior(0), x.stride(0), r_m.interior(0), r_m.stride(0));
  mk::residual9_span(st, ro, sp, info.ny, b.interior(0), b.stride(0),
                     x.interior(0), x.stride(0), r_s.interior(0),
                     r_s.stride(0));
  expect_ocean_equal(*c.one_block, c.stencil->mask(), r_m, r_s,
                     "residual9 plane");
  add("residual9", 96,
      time_best([&] {
        mk::residual9(st, info.nx, info.ny, b.interior(0), b.stride(0),
                      x.interior(0), x.stride(0), r_m.interior(0),
                      r_m.stride(0));
      }),
      time_best([&] {
        mk::residual9_span(st, ro, sp, info.ny, b.interior(0), b.stride(0),
                           x.interior(0), x.stride(0), r_s.interior(0),
                           r_s.stride(0));
      }));

  // Reductions.
  check(mk::masked_dot(mask.data(), mask.nx(), info.nx, info.ny,
                       x.interior(0), x.stride(0), b.interior(0),
                       b.stride(0), 0.0) ==
            mk::dot_span(ro, sp, info.ny, x.interior(0), x.stride(0),
                         b.interior(0), b.stride(0), 0.0),
        "masked_dot");
  add("masked_dot", 17,
      time_best([&] {
        sink = mk::masked_dot(mask.data(), mask.nx(), info.nx, info.ny,
                              x.interior(0), x.stride(0), b.interior(0),
                              b.stride(0), 0.0);
      }),
      time_best([&] {
        sink = mk::dot_span(ro, sp, info.ny, x.interior(0), x.stride(0),
                            b.interior(0), b.stride(0), 0.0);
      }));
  {
    double dm[3] = {0, 0, 0}, ds[3] = {0, 0, 0};
    mk::masked_dot3(mask.data(), mask.nx(), info.nx, info.ny,
                    r_m.interior(0), r_m.stride(0), b.interior(0),
                    b.stride(0), z.interior(0), z.stride(0), true, dm);
    mk::dot3_span(ro, sp, info.ny, r_m.interior(0), r_m.stride(0),
                  b.interior(0), b.stride(0), z.interior(0), z.stride(0),
                  true, ds);
    check(dm[0] == ds[0] && dm[1] == ds[1] && dm[2] == ds[2],
          "masked_dot3");
  }
  add("masked_dot3", 25,
      time_best([&] {
        double o[3] = {0, 0, 0};
        mk::masked_dot3(mask.data(), mask.nx(), info.nx, info.ny,
                        r_m.interior(0), r_m.stride(0), b.interior(0),
                        b.stride(0), z.interior(0), z.stride(0), true, o);
        sink = o[0] + o[1] + o[2];
      }),
      time_best([&] {
        double o[3] = {0, 0, 0};
        mk::dot3_span(ro, sp, info.ny, r_m.interior(0), r_m.stride(0),
                      b.interior(0), b.stride(0), z.interior(0),
                      z.stride(0), true, o);
        sink = o[0] + o[1] + o[2];
      }));

  // Vector updates (dense twin sweeps every cell; span skips land).
  add("lincomb", 24,
      time_best([&] {
        mk::lincomb(info.nx, info.ny, 1.0001, x.interior(0), x.stride(0),
                    0.9999, y.interior(0), y.stride(0));
      }),
      time_best([&] {
        mk::lincomb_span(ro, sp, info.ny, 1.0001, x.interior(0),
                         x.stride(0), 0.9999, y.interior(0), y.stride(0));
      }));
  add("lincomb_axpy", 40,
      time_best([&] {
        mk::lincomb_axpy(info.nx, info.ny, 1.0001, x.interior(0),
                         x.stride(0), 0.9999, y.interior(0), y.stride(0),
                         1e-6, z.interior(0), z.stride(0));
      }),
      time_best([&] {
        mk::lincomb_axpy_span(ro, sp, info.ny, 1.0001, x.interior(0),
                              x.stride(0), 0.9999, y.interior(0),
                              y.stride(0), 1e-6, z.interior(0),
                              z.stride(0));
      }));
  add("scale", 16,
      time_best([&] {
        mk::scale(info.nx, info.ny, 1.0000001, y.interior(0), y.stride(0));
      }),
      time_best([&] {
        mk::scale_span(ro, sp, info.ny, 1.0000001, y.interior(0),
                       y.stride(0));
      }));
  return out;
}

/// End-to-end P-CSI on the 32-cell block decomposition, spans on vs
/// off, with bitwise identity of iterates/stats and the active/swept
/// counter audit.
SolvePair solve_pair(Case& c, bool audit_only) {
  comm::SerialComm comm;
  comm::HaloExchanger halo(*c.blocks);
  solver::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.max_iterations = 5000;

  solver::EigenBounds bounds;
  {
    solver::DistOperator a(*c.stencil, *c.blocks, 0);
    solver::DiagonalPreconditioner m(a);
    solver::LanczosOptions lopt;
    bounds = solver::estimate_eigenvalue_bounds(comm, halo, a, m, lopt)
                 .bounds;
  }

  solver::SolveStats st_on, st_off;
  comm::DistField x_on(*c.blocks, 0), x_off(*c.blocks, 0);
  auto run = [&](bool spans, comm::DistField& x,
                 solver::SolveStats& stats) {
    solver::DistOperator a(*c.stencil, *c.blocks, 0);
    a.set_use_spans(spans);
    solver::DiagonalPreconditioner m(a);
    solver::PcsiSolver s(bounds, opt);
    comm::DistField b(*c.blocks, 0);
    b.load_global(c.rhs_global);
    x.fill(0.0);
    const auto snap = comm.costs().counters();
    stats = s.solve(comm, halo, a, m, b, x);
    const auto d = comm.costs().since(snap);
    // Counter audit: every span-planned sweep records the block's ocean
    // census against the swept region, so the ratio must reproduce the
    // decomposition's ocean fraction.
    if (spans) {
      check(d.active_points > 0 && d.swept_points >= d.active_points,
            "active/swept counters recorded");
      const double ratio = static_cast<double>(d.active_points) /
                           static_cast<double>(d.swept_points);
      check(std::abs(ratio - c.blocks->ocean_fraction()) < 1e-9,
            "active/swept ratio == decomposition ocean fraction");
    }
  };
  run(true, x_on, st_on);
  run(false, x_off, st_off);
  check(st_on.converged && st_off.converged, "solves converged");
  check(st_on.iterations == st_off.iterations,
        "span-on/off iteration counts");
  check(st_on.relative_residual == st_off.relative_residual,
        "span-on/off relative residuals");
  expect_ocean_equal(*c.blocks, c.stencil->mask(), x_on, x_off,
                     "span-on/off solution iterates");

  SolvePair out;
  out.case_name = c.name;
  out.iterations = st_on.iterations;
  if (audit_only) return out;

  comm::DistField x(*c.blocks, 0), b(*c.blocks, 0);
  b.load_global(c.rhs_global);
  solver::DistOperator a_on(*c.stencil, *c.blocks, 0);
  solver::DistOperator a_off(*c.stencil, *c.blocks, 0);
  a_on.set_use_spans(true);
  a_off.set_use_spans(false);
  solver::DiagonalPreconditioner m_on(a_on), m_off(a_off);
  solver::PcsiSolver s(bounds, opt);
  out.span_on_s = time_best(
      [&] {
        x.fill(0.0);
        s.solve(comm, halo, a_on, m_on, b, x);
      },
      3);
  out.span_off_s = time_best(
      [&] {
        x.fill(0.0);
        s.solve(comm, halo, a_off, m_off, b, x);
      },
      3);
  std::printf("  pcsi %-10s %4d iters  span-on %7.2f ms  span-off %7.2f "
              "ms  %5.2fx\n",
              c.name.c_str(), out.iterations, out.span_on_s * 1e3,
              out.span_off_s * 1e3, out.speedup());
  return out;
}

bool write_json(const std::string& path, const std::vector<Case>& cases,
                const std::vector<std::vector<KernelPair>>& kernels,
                const std::vector<SolvePair>& solves, bool smoke,
                double smoke_speedup) {
  std::ofstream os(path);
  os.precision(6);
  os << "{\n  \"bench\": \"spans\",\n  \"smoke\": "
     << (smoke ? "true" : "false")
     << ",\n  \"identity_checked\": true,\n  \"smoke_speedup\": "
     << smoke_speedup << ",\n  \"cases\": [\n";
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    os << "    {\"name\": \"" << c.name << "\", \"nx\": " << c.grid->nx()
       << ", \"ny\": " << c.grid->ny()
       << ", \"land_fraction\": " << c.land
       << ", \"block_ocean_fraction\": " << c.blocks->ocean_fraction()
       << ",\n     \"kernels\": [\n";
    for (std::size_t k = 0; k < kernels[ci].size(); ++k) {
      const KernelPair& p = kernels[ci][k];
      os << "       {\"name\": \"" << p.name
         << "\", \"masked_gb_per_s\": " << p.masked_gbs()
         << ", \"span_gb_per_s\": " << p.span_gbs()
         << ", \"speedup\": " << p.speedup() << "}"
         << (k + 1 < kernels[ci].size() ? "," : "") << "\n";
    }
    os << "     ]}" << (ci + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"solves\": [\n";
  for (std::size_t k = 0; k < solves.size(); ++k) {
    const SolvePair& s = solves[k];
    os << "    {\"case\": \"" << s.case_name
       << "\", \"iterations\": " << s.iterations
       << ", \"span_on_seconds\": " << s.span_on_s
       << ", \"span_off_seconds\": " << s.span_off_s << ", \"speedup\": "
       << (s.span_off_s > 0 ? s.speedup() : 0.0) << "}"
       << (k + 1 < solves.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flush();
  return os.good();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_spans.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke")
      smoke = true;
    else
      json_path = a;
  }
  bench::print_header(
      "spans", "mask-free span kernels vs masked twins, low vs high land");

  std::vector<Case> cases;
  cases.push_back(make_case("low_land", 0.25, smoke ? 0.5 : 1.0, 2015));
  cases.push_back(make_case("high_land", 0.45, smoke ? 0.5 : 1.0, 2016));
  // The smoke gate's contract is a >= 40%-land sweep; the synthetic
  // generator tracks its target closely, but verify rather than assume.
  check(cases[1].land >= 0.40, "high_land case has >= 40% land");

  std::vector<std::vector<KernelPair>> kernels;
  std::vector<SolvePair> solves;
  double smoke_speedup = 0.0;
  for (Case& c : cases) {
    std::printf("\n%s: %dx%d, %.0f%% land, block ocean fraction %.3f\n",
                c.name.c_str(), c.grid->nx(), c.grid->ny(), 100.0 * c.land,
                c.blocks->ocean_fraction());
    kernels.push_back(kernel_pairs(c, smoke && c.name != "high_land"));
    if (c.name == "high_land")
      for (const KernelPair& p : kernels.back())
        if (p.name == "residual_norm2_9") smoke_speedup = p.speedup();
    solves.push_back(solve_pair(c, smoke));
  }

  std::printf(
      "\nmasked-norm residual sweep at %.0f%% land: span %.2fx masked\n",
      100.0 * cases[1].land, smoke_speedup);
  if (smoke && smoke_speedup < 1.25) {
    std::fprintf(stderr,
                 "SMOKE FAILURE: residual_norm2_9 span speedup %.2fx < "
                 "1.25x at %.0f%% land\n",
                 smoke_speedup, 100.0 * cases[1].land);
    ++failures;
  }

  if (!write_json(json_path, cases, kernels, solves, smoke,
                  smoke_speedup)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  if (failures) {
    std::fprintf(stderr, "%d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all identity and counter checks passed\n");
  return 0;
}
