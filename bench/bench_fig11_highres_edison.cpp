// Paper Fig. 11: the Fig. 8 experiment on NERSC Edison (Aries Dragonfly
// network, higher reduction variability). Anchors at 16,875 cores:
// ChronGear+diag 26.2 s/day, P-CSI+diag 7.0 (3.7x), P-CSI+EVP 5.6x.
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto grid = perf::pop_0p1deg_case();
  perf::PopTimingModel model(perf::edison_profile(), grid,
                             perf::paper_iteration_model(grid));

  bench::print_header("Figure 11 (left)",
                      "barotropic time per simulated day, 0.1deg POP, "
                      "Edison [seconds]");
  const int ps[] = {1125, 1688, 2700, 4220, 5400, 8440, 10800, 16875};
  util::Table left({"cores", "chrongear+diag", "chrongear+evp",
                    "pcsi+diag", "pcsi+evp"});
  for (int p : ps) {
    auto& row = left.row();
    row.add_int(p);
    for (auto c : perf::kAllConfigs)
      row.add(model.barotropic_per_day(c, p).total(), 2);
  }
  left.print(std::cout);

  bench::print_header("Figure 11 (right)",
                      "core simulation rate [simulated years / day]");
  util::Table right({"cores", "chrongear+diag", "chrongear+evp",
                     "pcsi+diag", "pcsi+evp"});
  for (int p : ps) {
    auto& row = right.row();
    row.add_int(p);
    for (auto c : perf::kAllConfigs)
      row.add(model.simulated_years_per_day(c, p), 2);
  }
  right.print(std::cout);

  const double cg =
      model.barotropic_per_day(perf::Config::kCgDiag, 16875).total();
  std::cout << "\nAt 16,875 cores: chrongear+diag " << cg
            << " s/day (paper 26.2); pcsi+evp speedup "
            << cg / model.barotropic_per_day(perf::Config::kPcsiEvp, 16875)
                        .total()
            << "x (paper 5.6x). Performance characteristics mirror "
               "Yellowstone (paper Sec. 5.3).\n";
  (void)cli;
  return 0;
}
