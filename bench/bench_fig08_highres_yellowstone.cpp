// Paper Fig. 8: (left) barotropic time per simulated day in 0.1-degree
// POP on Yellowstone for the four configurations; (right) core
// simulation rate (simulated years per wall-clock day). Anchors at
// 16,875 cores: ChronGear+diag 19.0 s/day vs P-CSI+diag 4.4 (4.3x) and
// P-CSI+EVP (5.2x); simulation rate 6.2 -> 10.5 SYPD.
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto grid = perf::pop_0p1deg_case();
  perf::PopTimingModel model(perf::yellowstone_profile(), grid,
                             perf::paper_iteration_model(grid));

  bench::print_header("Figure 8 (left)",
                      "barotropic time per simulated day, 0.1deg POP, "
                      "Yellowstone [seconds]");
  const int ps[] = {1125, 1688, 2700, 4220, 5400, 8440, 10800, 16875};
  util::Table left({"cores", "chrongear+diag", "chrongear+evp",
                    "pcsi+diag", "pcsi+evp"});
  for (int p : ps) {
    auto& row = left.row();
    row.add_int(p);
    for (auto c : perf::kAllConfigs)
      row.add(model.barotropic_per_day(c, p).total(), 2);
  }
  left.print(std::cout);

  bench::print_header("Figure 8 (right)",
                      "core simulation rate [simulated years / day]");
  util::Table right({"cores", "chrongear+diag", "chrongear+evp",
                     "pcsi+diag", "pcsi+evp"});
  for (int p : ps) {
    auto& row = right.row();
    row.add_int(p);
    for (auto c : perf::kAllConfigs)
      row.add(model.simulated_years_per_day(c, p), 2);
  }
  right.print(std::cout);

  const double cg =
      model.barotropic_per_day(perf::Config::kCgDiag, 16875).total();
  std::cout << "\nAt 16,875 cores: chrongear+diag " << cg << " s/day;"
            << " pcsi+diag speedup "
            << cg / model.barotropic_per_day(perf::Config::kPcsiDiag, 16875)
                        .total()
            << "x (paper 4.3x); pcsi+evp speedup "
            << cg / model.barotropic_per_day(perf::Config::kPcsiEvp, 16875)
                        .total()
            << "x (paper 5.2x).\nSimulation rate "
            << model.simulated_years_per_day(perf::Config::kCgDiag, 16875)
            << " -> "
            << model.simulated_years_per_day(perf::Config::kPcsiEvp, 16875)
            << " SYPD (paper 6.2 -> 10.5).\n";
  (void)cli;
  return 0;
}
