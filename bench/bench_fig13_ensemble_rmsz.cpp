// Paper Fig. 13: the ensemble-based RMSZ consistency test (Sec. 6).
// A reference ensemble of runs differing only by O(1e-14) initial
// temperature perturbations defines the natural variability; a candidate
// run's RMSZ against the ensemble reveals whether it is climate-
// consistent. The paper's findings to reproduce:
//   * loose tolerances (1e-10, 1e-11) score visibly ABOVE the ensemble
//     band — unlike the RMSE test, RMSZ detects them;
//   * the default/strict tolerances stay inside the band;
//   * the new P-CSI + block-EVP solver stays inside the band (the
//     result that cleared it for the CESM release).
//
// LIVE experiment; paper-scale is --members=40 --months=12 with a bigger
// --scale. Defaults are workstation-sized.
#include <iostream>

#include "bench_common.hpp"
#include "src/model/ocean_model.hpp"
#include "src/stats/ensemble.hpp"
#include "src/stats/statistics.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.08);
  const int months = cli.get_int("months", 4);
  const int members = cli.get_int("members", 12);
  const int nz = cli.get_int("nz", 3);

  stats::EnsembleConfig ens_cfg;
  ens_cfg.model.grid = grid::pop_1deg_spec(scale);
  ens_cfg.model.nz = nz;
  ens_cfg.model.block_size = 12;
  ens_cfg.model.nranks = 1;
  ens_cfg.months = months;
  ens_cfg.members = members;
  // Default solver for the ensemble: the production chrongear+diagonal.
  ens_cfg.model.solver.options.rel_tolerance = 1e-13;

  bench::print_header(
      "Figure 13",
      "ensemble RMSZ of monthly temperature (live mini-POP, " +
          std::to_string(members) + " members, " + std::to_string(months) +
          " months, grid " + std::to_string(ens_cfg.model.grid.nx) + "x" +
          std::to_string(ens_cfg.model.grid.ny) + ")");

  std::cout << "running ensemble";
  auto ensemble = stats::run_ensemble(ens_cfg, [](int done, int total) {
    std::cout << "." << std::flush;
    if (done == total) std::cout << "\n";
  });

  comm::SerialComm comm;
  model::OceanModel probe(comm, ens_cfg.model);
  auto mask = grid::ocean_mask(probe.depth());

  // Candidate cases: tolerance variants + the new solver.
  struct Case {
    std::string name;
    double tol;
    bool pcsi_evp;
  };
  const std::vector<Case> cases = {
      {"tol 1e-10", 1e-10, false}, {"tol 1e-11", 1e-11, false},
      {"tol 1e-13 (default)", 1e-13, false},
      {"tol 1e-15", 1e-15, false}, {"pcsi+evp (tol 1e-13)", 1e-13, true}};

  std::vector<stats::MonthlySeries> case_runs;
  for (const auto& cs : cases) {
    std::cout << "running case: " << cs.name << "\n";
    auto cfg = ens_cfg;
    cfg.model.solver.options.rel_tolerance = cs.tol;
    if (cs.pcsi_evp) {
      cfg.model.solver.solver = solver::SolverKind::kPcsi;
      cfg.model.solver.preconditioner =
          solver::PreconditionerKind::kBlockEvp;
    }
    case_runs.push_back(stats::run_member(cfg, /*member=*/-1));
  }

  std::vector<std::string> headers = {"month", "ensemble band"};
  for (const auto& cs : cases) headers.push_back(cs.name);
  util::Table t(headers);
  for (int m = 0; m < months; ++m) {
    auto slice = stats::month_slice(ensemble, m);
    auto moments = stats::ensemble_moments(slice);
    auto [lo, hi] = stats::ensemble_rmsz_range(slice, moments, mask);
    auto& row = t.row();
    row.add_int(m + 1);
    std::ostringstream band;
    band.precision(2);
    band << "[" << lo << ", " << hi << "]";
    row.add(band.str());
    for (const auto& run : case_runs)
      row.add(stats::rmsz(run[m], moments, mask), 2);
  }
  t.print(std::cout);
  std::cout
      << "\nShape check (paper Fig. 13): the loose tolerances score above "
         "the ensemble\nband; the default/strict tolerances and the new "
         "pcsi+evp solver stay on the\nband — the solver swap is climate-"
         "consistent.\n";
  return 0;
}
