// Paper Fig. 4: sparsity pattern of the nine-point coefficient matrix
// reordered block-by-block (3x3 blocks): a nine-diagonal block matrix
// whose diagonal blocks B_i share the full nine-point structure, edge-
// neighbor blocks carry at most 3n nonzeros on n rows, and corner-
// neighbor blocks carry a single nonzero. Printed as a block-level
// census plus an ASCII spy plot of the reordered matrix.
#include <cstdlib>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "src/linalg/dense.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int n = cli.get_int("block", 4);  // block edge; domain is 3x3 blocks
  const int nx = 3 * n;

  grid::GridSpec spec;
  spec.kind = grid::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = nx;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.1e4;
  grid::CurvilinearGrid g(spec);
  auto depth = grid::flat_bathymetry(g, 4000.0);
  grid::NinePointStencil st(g, depth, 1e-6);
  auto a = st.to_dense();

  bench::print_header("Figure 4",
                      "block-reordered sparsity of the nine-point matrix "
                      "(3x3 blocks of " +
                          std::to_string(n) + "x" + std::to_string(n) +
                          " cells)");

  // Block-by-block ordering: cell (i, j) -> (block id, local id).
  auto block_of = [&](int cell) {
    const int i = cell % nx, j = cell / nx;
    return (j / n) * 3 + (i / n);
  };
  auto reorder = [&](int cell) {
    const int i = cell % nx, j = cell / nx;
    const int b = block_of(cell);
    const int li = i % n, lj = j % n;
    return b * n * n + lj * n + li;
  };

  // Census of nonzeros between block pairs.
  std::map<std::pair<int, int>, long> census;
  const int total = nx * nx;
  for (int r = 0; r < total; ++r)
    for (int c = 0; c < total; ++c)
      if (a(r, c) != 0.0) census[{block_of(r), block_of(c)}]++;

  util::Table t({"block pair", "relation", "nonzeros", "paper bound"});
  long diag = census[{4, 4}];
  long edge = census[{4, 5}];
  long corner = census[{4, 8}];
  t.row().add("(4,4)").add("diagonal B_i").add_int(diag).add(
      "full 9-pt block");
  t.row().add("(4,5)").add("east neighbor").add_int(edge).add(
      "<= 3n = " + std::to_string(3 * n));
  t.row().add("(4,8)").add("NE corner").add_int(corner).add("1");
  t.print(std::cout);

  // ASCII spy plot of the reordered matrix (one char per cell pair).
  std::cout << "\nSpy plot (rows/cols in block order, '#' = nonzero):\n";
  std::vector<std::string> spy(total, std::string(total, '.'));
  for (int r = 0; r < total; ++r)
    for (int c = 0; c < total; ++c)
      if (a(r, c) != 0.0) spy[reorder(r)][reorder(c)] = '#';
  for (int r = 0; r < total; ++r) {
    if (r % (n * n) == 0 && r > 0)
      std::cout << std::string(total + (total / (n * n)) - 1, '-') << "\n";
    for (int c = 0; c < total; ++c) {
      if (c % (n * n) == 0 && c > 0) std::cout << '|';
      std::cout << spy[r][c];
    }
    std::cout << "\n";
  }
  std::cout << "\nShape check: nine block-diagonals; diagonal blocks are "
               "dense 9-point stencils,\nedge blocks have O(3n) entries, "
               "corner blocks a single entry (paper Fig. 4).\n";
  return 0;
}
