// Ablation: convergence-check frequency. The paper checks every 10
// iterations for all solvers (§5.2) and notes P-CSI "may improve if the
// check for convergence occurs less frequently" — because for P-CSI the
// check IS its only global reduction. We measure both effects:
//  * live: extra iterations done because convergence is only observed
//    every k iterations (overshoot);
//  * model: reduction seconds/day saved at scale by rarer checks.
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto c = bench::make_live_case("1deg", cli.get_double("scale", 0.2), 12);

  bench::print_header("Ablation: check frequency",
                      "live P-CSI iterations & reductions vs check "
                      "frequency (1deg-scaled grid)");
  util::Table t({"check every", "iterations", "allreduces per solve"});
  for (int freq : {1, 2, 5, 10, 20, 50}) {
    auto cfg = bench::config_for(perf::Config::kPcsiDiag, 1e-12);
    cfg.options.check_frequency = freq;
    auto res = bench::measure_iterations(c, cfg, 3);
    t.row()
        .add_int(freq)
        .add(res.mean_iterations, 1)
        .add(static_cast<double>(res.costs.allreduces) / 3.0, 1);
  }
  t.print(std::cout);

  bench::print_header("Ablation: check frequency",
                      "modeled 0.1deg P-CSI+EVP seconds/day at 16,875 "
                      "cores vs check frequency");
  auto grid = perf::pop_0p1deg_case();
  util::Table t2({"check every", "barotropic s/day", "reduction s/day"});
  for (int freq : {1, 2, 5, 10, 20, 50}) {
    auto g = grid;
    g.check_frequency = freq;
    perf::PopTimingModel model(perf::yellowstone_profile(), g,
                               perf::paper_iteration_model(g));
    auto cost = model.barotropic_per_day(perf::Config::kPcsiEvp, 16875);
    t2.row().add_int(freq).add(cost.total(), 2).add(cost.reduction, 2);
  }
  t2.print(std::cout);
  std::cout << "\nShape check: iterations overshoot by at most "
               "(frequency-1); the modeled\nreduction time falls as 1/"
               "frequency — checking every iteration would erase much\n"
               "of P-CSI's advantage (paper Sec. 5.2 note).\n";
  return 0;
}
