// Kernel benchmark harness: times the hot-path kernels behind the
// barotropic solvers (src/solver/kernels.*) against the seed's unfused
// Field-indexing loops, plus end-to-end ChronGear and P-CSI solves, on a
// representative masked production block (the full 1-degree POP grid as
// one 320x384 tile). Prints a table and writes BENCH_kernels.json — run
// it from the repo root so the JSON lands there:
//
//   ./build/bench/bench_kernels [output.json]
//
// Wall times characterize THIS machine; the scaling figures use the
// machine profiles in src/perf instead.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/dist_operator.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/kernels.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/pcsi.hpp"

using namespace minipop;
namespace mk = solver::kernels;

// The seed loops below are the measurement baseline: they must stay
// compiled the way the seed shipped them (default build = -O2). Pinning
// them keeps the fused-vs-unfused comparison meaningful in -O3 builds.
#if defined(__GNUC__) && !defined(__clang__)
#define BENCH_SEED_OPT __attribute__((optimize("O2")))
#else
#define BENCH_SEED_OPT
#endif

namespace {

/// Pre-kernel (seed) implementations: Field::operator() indexing, one
/// sweep per logical operation, residual as apply-then-subtract.
namespace reference {

BENCH_SEED_OPT void apply(const solver::DistOperator& op,
                          const comm::DistField& x, comm::DistField& y) {
  for (int lb = 0; lb < op.num_local_blocks(); ++lb) {
    const auto& b = x.info(lb);
    const auto& c0 = op.block_coeff(lb, grid::Dir::kCenter);
    const auto& ce = op.block_coeff(lb, grid::Dir::kEast);
    const auto& cw = op.block_coeff(lb, grid::Dir::kWest);
    const auto& cn = op.block_coeff(lb, grid::Dir::kNorth);
    const auto& cs = op.block_coeff(lb, grid::Dir::kSouth);
    const auto& cne = op.block_coeff(lb, grid::Dir::kNorthEast);
    const auto& cnw = op.block_coeff(lb, grid::Dir::kNorthWest);
    const auto& cse = op.block_coeff(lb, grid::Dir::kSouthEast);
    const auto& csw = op.block_coeff(lb, grid::Dir::kSouthWest);
    const util::Field& xd = x.data(lb);
    util::Field& yd = const_cast<comm::DistField&>(y).data(lb);
    const int h = x.halo();
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i) {
        const int ii = i + h, jj = j + h;
        yd(ii, jj) = c0(i, j) * xd(ii, jj) + ce(i, j) * xd(ii + 1, jj) +
                     cw(i, j) * xd(ii - 1, jj) + cn(i, j) * xd(ii, jj + 1) +
                     cs(i, j) * xd(ii, jj - 1) +
                     cne(i, j) * xd(ii + 1, jj + 1) +
                     cnw(i, j) * xd(ii - 1, jj + 1) +
                     cse(i, j) * xd(ii + 1, jj - 1) +
                     csw(i, j) * xd(ii - 1, jj - 1);
      }
  }
}

/// Seed residual: the apply sweep above, then a second full pass for
/// r = b - A x. This is what the fused residual9 kernel replaces.
BENCH_SEED_OPT void apply_then_subtract(const solver::DistOperator& op,
                                        const comm::DistField& b,
                                        const comm::DistField& x,
                                        comm::DistField& r) {
  apply(op, x, r);
  for (int lb = 0; lb < op.num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        r.at(lb, i, j) = b.at(lb, i, j) - r.at(lb, i, j);
  }
}

BENCH_SEED_OPT double masked_dot(const solver::DistOperator& op,
                                 const comm::DistField& a,
                                 const comm::DistField& b) {
  double sum = 0.0;
  for (int lb = 0; lb < op.num_local_blocks(); ++lb) {
    const auto& info = a.info(lb);
    const auto& mask = op.block_mask(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        if (mask(i, j)) sum += a.at(lb, i, j) * b.at(lb, i, j);
  }
  return sum;
}

BENCH_SEED_OPT void lincomb(double a, const comm::DistField& x, double b,
                            comm::DistField& y) {
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        y.at(lb, i, j) = a * x.at(lb, i, j) + b * y.at(lb, i, j);
  }
}

}  // namespace reference

/// Best-of-repeats timing: calibrates the batch size to ~20 ms, then
/// reports the fastest of several batches (per single call, seconds).
template <typename F>
double time_best(F&& fn, int repeats = 5) {
  using clock = std::chrono::steady_clock;
  auto seconds_for = [&](int reps) {
    const auto t0 = clock::now();
    for (int k = 0; k < reps; ++k) fn();
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  int reps = 1;
  double t = seconds_for(reps);
  while (t < 0.02 && reps < (1 << 20)) {
    reps *= 2;
    t = seconds_for(reps);
  }
  double best = t / reps;
  for (int k = 1; k < repeats; ++k)
    best = std::min(best, seconds_for(reps) / reps);
  return best;
}

struct KernelResult {
  std::string name;
  double seconds = 0;      ///< per call
  double bytes_per_point;  ///< logical traffic: 8 B per array element
                           ///< read or written, +1 B per mask byte.
                           ///< fp32 rows keep the SAME 8 B convention, so
                           ///< their "effective GB/s" is GB/s-EQUIVALENT:
                           ///< directly comparable to the fp64 row, with
                           ///< the halved physical traffic showing up as
                           ///< a ratio > 1 against it.
  double points = 0;
  double mpoints_per_s() const { return points / seconds / 1e6; }
  double gb_per_s() const {
    return points * bytes_per_point / seconds / 1e9;
  }
};

struct SolveResult {
  std::string name;
  int iterations = 0;
  double seconds = 0;
  double rel_residual = 0;
};

bool write_json(const std::string& path, int nx, int ny,
                double ocean_fraction, double sweep_speedup,
                double path_speedup,
                const std::vector<KernelResult>& kernels,
                const std::vector<SolveResult>& solves) {
  std::ofstream os(path);
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"kernels\",\n"
     << "  \"grid\": {\"nx\": " << nx << ", \"ny\": " << ny
     << ", \"ocean_fraction\": " << ocean_fraction << "},\n"
     << "  \"residual_sweep_fused_speedup_vs_seed\": " << sweep_speedup
     << ",\n"
     << "  \"residual_path_fused_speedup_vs_seed\": " << path_speedup
     << ",\n"
     << "  \"kernels\": [\n";
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const auto& r = kernels[k];
    os << "    {\"name\": \"" << r.name << "\", \"ns_per_point\": "
       << r.seconds / r.points * 1e9 << ", \"mpoints_per_s\": "
       << r.mpoints_per_s() << ", \"bytes_per_point\": "
       << r.bytes_per_point << ", \"effective_gb_per_s\": " << r.gb_per_s()
       << "}" << (k + 1 < kernels.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"solves\": [\n";
  for (std::size_t k = 0; k < solves.size(); ++k) {
    const auto& s = solves[k];
    os << "    {\"solver\": \"" << s.name << "\", \"iterations\": "
       << s.iterations << ", \"seconds\": " << s.seconds
       << ", \"relative_residual\": " << s.rel_residual << "}"
       << (k + 1 < solves.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flush();
  return os.good();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  bench::print_header("kernels",
                      "hot-path kernel rates and fused-vs-seed speedup");

  // The full 1-degree production grid as ONE masked block, so the sweeps
  // below run over a representative land/ocean pattern with no block
  // edges inside the hot loop.
  bench::LiveCase c = bench::make_live_case("1deg", 1.0, 384);
  comm::SerialComm comm;
  solver::DistOperator op(*c.stencil, *c.decomp, 0);
  const int nx = c.grid->nx(), ny = c.grid->ny();
  const double points =
      static_cast<double>(nx) * ny;  // single block covers the grid
  const double ocean_fraction = op.local_ocean_cells() / points;
  std::printf("grid %dx%d, one block, %.0f%% ocean\n\n", nx, ny,
              100.0 * ocean_fraction);

  comm::DistField x(*c.decomp, 0), y(*c.decomp, 0), b(*c.decomp, 0),
      r(*c.decomp, 0), z(*c.decomp, 0);
  x.load_global(c.rhs_global);
  b.load_global(c.rhs_global);
  z.load_global(c.rhs_global);
  c.halo->exchange(comm, x);  // halos valid; sweeps below skip comms

  const auto st = [&] {
    return mk::Stencil9{
        op.block_coeff(0, grid::Dir::kCenter).data(),
        op.block_coeff(0, grid::Dir::kEast).data(),
        op.block_coeff(0, grid::Dir::kWest).data(),
        op.block_coeff(0, grid::Dir::kNorth).data(),
        op.block_coeff(0, grid::Dir::kSouth).data(),
        op.block_coeff(0, grid::Dir::kNorthEast).data(),
        op.block_coeff(0, grid::Dir::kNorthWest).data(),
        op.block_coeff(0, grid::Dir::kSouthEast).data(),
        op.block_coeff(0, grid::Dir::kSouthWest).data(),
        op.block_coeff(0, grid::Dir::kCenter).nx()};
  }();
  const auto& mask = op.block_mask(0);
  const auto& info = x.info(0);
  volatile double sink = 0;  // keeps reduction results live

  std::vector<KernelResult> results;
  auto add = [&](const std::string& name, double bytes_per_point,
                 double seconds) {
    results.push_back({name, seconds, bytes_per_point, points});
    const auto& kr = results.back();
    std::printf("%-28s %8.3f ns/pt %9.1f Mpt/s %7.2f GB/s\n", name.c_str(),
                seconds / points * 1e9, kr.mpoints_per_s(), kr.gb_per_s());
  };

  // Stencil sweeps. Logical traffic: 9 coefficient arrays + the fields
  // read/written, 8 B each per point (halo re-reads and write-allocate
  // traffic not counted — "effective" bandwidth in the STREAM sense).
  add("apply9", 88, time_best([&] {
        mk::apply9(st, info.nx, info.ny, x.interior(0), x.stride(0),
                   y.interior(0), y.stride(0));
      }));
  add("apply_seed_reference", 88,
      time_best([&] { reference::apply(op, x, y); }));
  const double fused = time_best([&] {
    mk::residual9(st, info.nx, info.ny, b.interior(0), b.stride(0),
                  x.interior(0), x.stride(0), r.interior(0), r.stride(0));
  });
  add("residual9_fused", 96, fused);
  const double unfused =
      time_best([&] { reference::apply_then_subtract(op, b, x, r); });
  add("residual_seed_apply_sub", 112, unfused);

  // The convergence-check path: the solvers need r AND masked ||r||^2.
  // Seed: apply sweep + subtract sweep + masked-dot sweep (three passes).
  // Fused: residual_norm2_9, one pass. This is the per-check-iteration
  // "residual path" the fusion exists for.
  const double check_fused = time_best([&] {
    sink = mk::residual_norm2_9(st, mask.data(), mask.nx(), info.nx,
                                info.ny, b.interior(0), b.stride(0),
                                x.interior(0), x.stride(0), r.interior(0),
                                r.stride(0), 0.0);
  });
  add("residual_norm2_9_fused", 97, check_fused);
  const double check_unfused = time_best([&] {
    reference::apply_then_subtract(op, b, x, r);
    sink = reference::masked_dot(op, r, r);
  });
  add("residual_norm2_seed_3pass", 121, check_unfused);

  // Reductions (mask byte counted once per point).
  add("masked_dot", 17, time_best([&] {
        sink = mk::masked_dot(mask.data(), mask.nx(), info.nx, info.ny,
                              x.interior(0), x.stride(0), b.interior(0),
                              b.stride(0), 0.0);
      }));
  add("masked_dot_seed_reference", 17,
      time_best([&] { sink = reference::masked_dot(op, x, b); }));
  add("masked_dot3_fused", 25, time_best([&] {
        double out[3] = {0, 0, 0};
        mk::masked_dot3(mask.data(), mask.nx(), info.nx, info.ny,
                        r.interior(0), r.stride(0), b.interior(0),
                        b.stride(0), z.interior(0), z.stride(0), true, out);
        sink = out[0] + out[1] + out[2];
      }));

  // Vector updates.
  add("lincomb", 24, time_best([&] {
        mk::lincomb(info.nx, info.ny, 1.0001, x.interior(0), x.stride(0),
                    0.9999, y.interior(0), y.stride(0));
      }));
  add("lincomb_seed_reference", 24,
      time_best([&] { reference::lincomb(1.0001, x, 0.9999, y); }));
  add("axpy", 24, time_best([&] {
        mk::axpy(info.nx, info.ny, 1e-6, x.interior(0), x.stride(0),
                 y.interior(0), y.stride(0));
      }));
  add("lincomb_axpy_fused", 40, time_best([&] {
        mk::lincomb_axpy(info.nx, info.ny, 1.0001, x.interior(0),
                         x.stride(0), 0.9999, y.interior(0), y.stride(0),
                         1e-6, z.interior(0), z.stride(0));
      }));
  // --- fp32 instantiations of the same kernels -------------------------
  // Storage-precision float sweeps over identical data (demoted once).
  // bytes_per_point stays at the fp64 convention (8 B per element), so
  // the GB/s column is GB/s-equivalent and the fp32/fp64 row ratio IS
  // the speedup the mixed-precision solver path buys per sweep.
  comm::DistField32 x32(*c.decomp, 0), y32(*c.decomp, 0),
      b32(*c.decomp, 0), r32(*c.decomp, 0), z32(*c.decomp, 0);
  solver::demote(x, x32);
  solver::demote(b, b32);
  solver::demote(z, z32);
  c.halo->exchange(comm, x32);
  const auto st32 = [&] {
    return mk::Stencil9f{
        op.block_coeff32(0, grid::Dir::kCenter).data(),
        op.block_coeff32(0, grid::Dir::kEast).data(),
        op.block_coeff32(0, grid::Dir::kWest).data(),
        op.block_coeff32(0, grid::Dir::kNorth).data(),
        op.block_coeff32(0, grid::Dir::kSouth).data(),
        op.block_coeff32(0, grid::Dir::kNorthEast).data(),
        op.block_coeff32(0, grid::Dir::kNorthWest).data(),
        op.block_coeff32(0, grid::Dir::kSouthEast).data(),
        op.block_coeff32(0, grid::Dir::kSouthWest).data(),
        op.block_coeff32(0, grid::Dir::kCenter).nx()};
  }();
  std::printf("\n");
  add("apply9_fp32", 88, time_best([&] {
        mk::apply9(st32, info.nx, info.ny, x32.interior(0), x32.stride(0),
                   y32.interior(0), y32.stride(0));
      }));
  add("residual9_fp32", 96, time_best([&] {
        mk::residual9(st32, info.nx, info.ny, b32.interior(0),
                      b32.stride(0), x32.interior(0), x32.stride(0),
                      r32.interior(0), r32.stride(0));
      }));
  add("residual_norm2_9_fp32", 97, time_best([&] {
        sink = mk::residual_norm2_9(st32, mask.data(), mask.nx(), info.nx,
                                    info.ny, b32.interior(0), b32.stride(0),
                                    x32.interior(0), x32.stride(0),
                                    r32.interior(0), r32.stride(0), 0.0);
      }));
  add("masked_dot_fp32", 17, time_best([&] {
        sink = mk::masked_dot(mask.data(), mask.nx(), info.nx, info.ny,
                              x32.interior(0), x32.stride(0),
                              b32.interior(0), b32.stride(0), 0.0);
      }));
  add("lincomb_fp32", 24, time_best([&] {
        mk::lincomb(info.nx, info.ny, 1.0001f, x32.interior(0),
                    x32.stride(0), 0.9999f, y32.interior(0), y32.stride(0));
      }));
  add("lincomb_axpy_fp32", 40, time_best([&] {
        mk::lincomb_axpy(info.nx, info.ny, 1.0001f, x32.interior(0),
                         x32.stride(0), 0.9999f, y32.interior(0),
                         y32.stride(0), 1e-6f, z32.interior(0),
                         z32.stride(0));
      }));

  const double sweep_speedup = unfused / fused;
  const double path_speedup = check_unfused / check_fused;
  std::printf(
      "\nresidual sweep (r = b - Ax) fused vs seed apply-then-subtract: "
      "%.2fx\n"
      "residual path incl. norm^2 (convergence check) fused vs seed "
      "3-pass: %.2fx\n\n",
      sweep_speedup, path_speedup);

  // End-to-end solves on the same problem (diagonal preconditioner,
  // warm Lanczos bounds for P-CSI; solve time only, setup excluded).
  std::vector<SolveResult> solves;
  solver::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  solver::DiagonalPreconditioner m(op);
  {
    solver::ChronGearSolver cg(opt);
    solver::SolveStats stats;
    comm::DistField xs(*c.decomp, 0);
    const double secs = time_best(
        [&] {
          xs.fill(0.0);
          stats = cg.solve(comm, *c.halo, op, m, b, xs);
        },
        3);
    solves.push_back({"chrongear", stats.iterations, secs,
                      stats.relative_residual});
  }
  {
    solver::LanczosOptions lopt;
    const auto bounds =
        solver::estimate_eigenvalue_bounds(comm, *c.halo, op, m, lopt)
            .bounds;
    solver::PcsiSolver pcsi(bounds, opt);
    solver::SolveStats stats;
    comm::DistField xs(*c.decomp, 0);
    const double secs = time_best(
        [&] {
          xs.fill(0.0);
          stats = pcsi.solve(comm, *c.halo, op, m, b, xs);
        },
        3);
    solves.push_back({"pcsi", stats.iterations, secs,
                      stats.relative_residual});
  }
  for (const auto& s : solves)
    std::printf("%-10s %5d iters  %8.2f ms/solve  rel=%.3e\n",
                s.name.c_str(), s.iterations, s.seconds * 1e3,
                s.rel_residual);

  if (!write_json(json_path, nx, ny, ocean_fraction, sweep_speedup,
                  path_speedup, results, solves)) {
    std::fprintf(stderr, "\nerror: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
