// Microbenchmarks of the computational kernels behind the cost model:
// nine-point stencil apply, masked dot product, vector updates, the
// diagonal and block-EVP preconditioner applications, halo exchange and
// (virtual) allreduce. Wall times here characterize THIS workstation;
// the scaling figures use the machine profiles in src/perf instead.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "src/evp/block_evp_preconditioner.hpp"
#include "src/solver/field_ops.hpp"

using namespace minipop;

namespace {

struct KernelFixture {
  bench::LiveCase c;
  comm::SerialComm comm;
  std::unique_ptr<solver::DistOperator> op;
  comm::DistField x, y;

  explicit KernelFixture(int extent)
      : c(bench::make_live_case("1deg",
                                extent / 320.0, 12)),
        op(std::make_unique<solver::DistOperator>(*c.stencil, *c.decomp,
                                                  0)),
        x(*c.decomp, 0),
        y(*c.decomp, 0) {
    x.load_global(c.rhs_global);
  }
};

KernelFixture& fixture(int extent) {
  static std::map<int, std::unique_ptr<KernelFixture>> cache;
  auto& slot = cache[extent];
  if (!slot) slot = std::make_unique<KernelFixture>(extent);
  return *slot;
}

}  // namespace

static void BM_StencilApply(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    f.op->apply(f.comm, *f.c.halo, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data(0).data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(f.c.grid->nx()) *
                          f.c.grid->ny());
}
BENCHMARK(BM_StencilApply)->Arg(80)->Arg(160)->Arg(320);

static void BM_MaskedDot(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double d = f.op->local_dot(f.comm, f.x, f.x);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(f.c.grid->nx()) *
                          f.c.grid->ny());
}
BENCHMARK(BM_MaskedDot)->Arg(160)->Arg(320);

static void BM_Lincomb(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    solver::lincomb(f.comm, 1.0001, f.x, 0.9999, f.y);
    benchmark::DoNotOptimize(f.y.data(0).data());
  }
}
BENCHMARK(BM_Lincomb)->Arg(160)->Arg(320);

static void BM_DiagonalPrecond(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  solver::DiagonalPreconditioner m(*f.op);
  for (auto _ : state) {
    m.apply(f.comm, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data(0).data());
  }
}
BENCHMARK(BM_DiagonalPrecond)->Arg(160)->Arg(320);

static void BM_BlockEvpPrecond(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  evp::BlockEvpOptions opt;
  opt.max_tile = 12;
  evp::BlockEvpPreconditioner m(*f.op, *f.c.grid, f.c.depth, opt);
  for (auto _ : state) {
    m.apply(f.comm, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data(0).data());
  }
}
BENCHMARK(BM_BlockEvpPrecond)->Arg(160)->Arg(320);

static void BM_HaloExchange(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    f.c.halo->exchange(f.comm, f.x);
    benchmark::DoNotOptimize(f.x.data(0).data());
  }
}
BENCHMARK(BM_HaloExchange)->Arg(160)->Arg(320);

static void BM_EvpTileSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  grid::GridSpec spec;
  spec.kind = grid::GridKind::kUniform;
  spec.nx = n;
  spec.ny = n;
  spec.periodic_x = false;
  spec.dx = 1e4;
  spec.dy = 1.1e4;
  grid::CurvilinearGrid g(spec);
  auto depth = grid::flat_bathymetry(g, 3000.0);
  grid::NinePointStencil st(g, depth, 1e-6);
  std::array<util::Field, grid::kNumDirs> coeff;
  for (int d = 0; d < grid::kNumDirs; ++d)
    coeff[d] = st.coeff(static_cast<grid::Dir>(d));
  evp::EvpTileSolver evp(coeff, 0, 0, n, n);
  util::Field y(n, n, 1.0), x;
  for (auto _ : state) {
    evp.solve(y, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_EvpTileSolve)->Arg(6)->Arg(9)->Arg(12);

BENCHMARK_MAIN();
