// Batched multi-RHS solver benchmark: throughput of ONE batched P-CSI
// solve of B systems versus B sequential scalar solves of the same
// systems, on a serial rank and on a 4-rank ThreadComm team, for
// B in {1, 2, 4, 8, 16}.
//
// For each (nranks, B) the harness reports solves/sec both ways, the
// "batch efficiency" (batched solves/sec divided by sequential
// solves/sec — the Fig-13 ensemble speedup a batch of that width buys),
// the per-solve halo rounds / point-to-point messages / allreduce calls
// from the CostTracker (the batch amortises every exchange and
// reduction across its members, so per-solve counts drop ~B×), and a
// bitwise identity check of every batched member against its scalar
// twin.
//
// Run from the repo root so BENCH_batch.json lands there:
//
//   ./build/bench/bench_batch [output.json]
//   ./build/bench/bench_batch --smoke   # CI: B=4 on 4 ranks, asserts
//                                       # efficiency > 1 and identity
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/solver/batched_solver.hpp"
#include "src/util/rng.hpp"

using namespace minipop;

namespace {

/// Bowl-with-island bathymetry on a uniform grid. The grid is sized for
/// the paper's strong-scaling regime — SMALL per-rank subdomains (16
/// blocks of 12x10, four per rank at 4 ranks) where per-iteration
/// latency (halo handshakes, reduction barriers) rivals the stencil
/// flops. That is exactly where POP's barotropic solver lives at scale
/// and where batching pays: the batch amortises every handshake across
/// B members while the flops stay the same.
struct Case {
  std::unique_ptr<grid::CurvilinearGrid> grid;
  util::Field depth;
  std::unique_ptr<grid::NinePointStencil> stencil;
  std::unique_ptr<grid::Decomposition> decomp;
  std::unique_ptr<comm::HaloExchanger> halo;

  Case(int nx, int ny, int bx, int by, int nranks) {
    grid::GridSpec spec;
    spec.kind = grid::GridKind::kUniform;
    spec.nx = nx;
    spec.ny = ny;
    spec.periodic_x = false;
    spec.dx = 1.0e4;
    spec.dy = 1.2e4;
    grid = std::make_unique<grid::CurvilinearGrid>(spec);
    depth = grid::bowl_bathymetry(*grid, 4000.0);
    for (int j = ny / 2 - 1; j <= ny / 2 + 1; ++j)
      for (int i = nx / 2 - 2; i <= nx / 2 + 2; ++i)
        depth(i, j) = 0.0;  // island in the bowl
    stencil = std::make_unique<grid::NinePointStencil>(*grid, depth, 1e-6);
    decomp = std::make_unique<grid::Decomposition>(
        nx, ny, false, stencil->mask(), bx, by, nranks);
    halo = std::make_unique<comm::HaloExchanger>(*decomp);
  }

  util::Field random_rhs(std::uint64_t seed) const {
    util::Xoshiro256 rng(seed);
    util::Field b(grid->nx(), grid->ny(), 0.0);
    for (int j = 0; j < grid->ny(); ++j)
      for (int i = 0; i < grid->nx(); ++i)
        if (stencil->mask()(i, j)) b(i, j) = rng.uniform(-1, 1);
    return b;
  }
};

solver::SolverConfig pcsi_config() {
  solver::SolverConfig cfg;
  cfg.solver = solver::SolverKind::kPcsi;
  cfg.preconditioner = solver::PreconditionerKind::kDiagonal;
  cfg.options.rel_tolerance = 1e-10;
  cfg.resilient = false;
  cfg.lanczos.rel_tolerance = 0.02;
  return cfg;
}

/// The fully composed stack: mixed precision x resilience x overlap,
/// all riding the same batched core (DESIGN.md §11).
solver::SolverConfig composed_config() {
  solver::SolverConfig cfg = pcsi_config();
  cfg.options.precision = solver::Precision::kMixed;
  cfg.resilient = true;
  cfg.overlap = true;
  return cfg;
}

struct Row {
  int nranks = 0;
  int batch = 0;
  double seq_seconds = 0;    ///< best-of-repeats, B sequential solves
  double batch_seconds = 0;  ///< best-of-repeats, one B-member solve
  bool identity_ok = true;   ///< batched bits == scalar bits, all members
  int iterations_seq = 0;    ///< sum over the B scalar solves
  int iterations_batch = 0;  ///< lockstep iterations of the batched solve
  // Rank-0 per-solve communication counts (whole B-sweep divided by B).
  double halo_exchanges_seq = 0, halo_exchanges_batch = 0;
  double p2p_messages_seq = 0, p2p_messages_batch = 0;
  double allreduces_seq = 0, allreduces_batch = 0;

  double solves_per_sec_seq() const { return batch / seq_seconds; }
  double solves_per_sec_batch() const { return batch / batch_seconds; }
  double efficiency() const { return seq_seconds / batch_seconds; }
};

/// Run the B-vs-sequential comparison on `nranks` ranks. The body is
/// executed by every rank; collectives keep the ranks in lockstep, so
/// rank 0's wall-clock around a collective-bounded region times the
/// team. Repeats take the best time; costs and identity come from the
/// first repeat.
Row run_case(const Case& c, int nranks, int batch, int repeats) {
  using clock = std::chrono::steady_clock;
  Row row;
  row.nranks = nranks;
  row.batch = batch;

  std::vector<util::Field> rhs;
  for (int m = 0; m < batch; ++m)
    rhs.push_back(c.random_rhs(4000 + static_cast<std::uint64_t>(m)));
  std::vector<util::Field> x_seq(batch), x_bat(batch);
  for (int m = 0; m < batch; ++m) {
    x_seq[m] = util::Field(c.grid->nx(), c.grid->ny(), 0.0);
    x_bat[m] = util::Field(c.grid->nx(), c.grid->ny(), 0.0);
  }

  auto body = [&](comm::Communicator& comm) {
    const int r = comm.rank();
    solver::BarotropicSolver solver(comm, *c.halo, *c.grid, c.depth,
                                    *c.stencil, *c.decomp, pcsi_config());
    std::vector<comm::DistField> b, x;
    for (int m = 0; m < batch; ++m) {
      b.emplace_back(*c.decomp, r);
      x.emplace_back(*c.decomp, r);
      b.back().load_global(rhs[m]);
    }
    std::vector<const comm::DistField*> bs;
    std::vector<comm::DistField*> xs;
    for (int m = 0; m < batch; ++m) {
      bs.push_back(&b[m]);
      xs.push_back(&x[m]);
    }

    for (int rep = 0; rep < repeats; ++rep) {
      // Sequential: B scalar solves.
      for (auto& f : x) f.fill(0.0);
      (void)comm.allreduce_sum(0.0);  // align ranks before timing
      auto snap = comm.costs().counters();
      const auto t0 = clock::now();
      int it_seq = 0;
      for (int m = 0; m < batch; ++m)
        it_seq += solver.solve(comm, b[m], x[m]).iterations;
      const double t_seq =
          std::chrono::duration<double>(clock::now() - t0).count();
      const auto seq_costs = comm.costs().since(snap);
      if (rep == 0 && r == 0) {
        row.iterations_seq = it_seq;
        row.halo_exchanges_seq =
            static_cast<double>(seq_costs.halo_exchanges) / batch;
        row.p2p_messages_seq =
            static_cast<double>(seq_costs.p2p_messages) / batch;
        row.allreduces_seq =
            static_cast<double>(seq_costs.allreduces) / batch;
        for (int m = 0; m < batch; ++m) x[m].store_global(x_seq[m]);
      }

      // Batched: one B-member solve of the same systems.
      for (auto& f : x) f.fill(0.0);
      (void)comm.allreduce_sum(0.0);
      snap = comm.costs().counters();
      const auto t1 = clock::now();
      const auto stats = solver.solve_batch(comm, bs, xs);
      const double t_bat =
          std::chrono::duration<double>(clock::now() - t1).count();
      const auto bat_costs = comm.costs().since(snap);
      if (rep == 0 && r == 0) {
        row.iterations_batch = stats.iterations;
        row.halo_exchanges_batch =
            static_cast<double>(bat_costs.halo_exchanges) / batch;
        row.p2p_messages_batch =
            static_cast<double>(bat_costs.p2p_messages) / batch;
        row.allreduces_batch =
            static_cast<double>(bat_costs.allreduces) / batch;
        for (int m = 0; m < batch; ++m) x[m].store_global(x_bat[m]);
      }
      if (r == 0) {
        row.seq_seconds =
            rep == 0 ? t_seq : std::min(row.seq_seconds, t_seq);
        row.batch_seconds =
            rep == 0 ? t_bat : std::min(row.batch_seconds, t_bat);
      }
    }
  };

  if (nranks == 1) {
    comm::SerialComm comm;
    body(comm);
  } else {
    comm::ThreadTeam team(nranks);
    team.run(body);
  }

  for (int m = 0; m < batch; ++m)
    for (int j = 0; j < x_seq[m].ny() && row.identity_ok; ++j)
      for (int i = 0; i < x_seq[m].nx(); ++i)
        if (x_seq[m](i, j) != x_bat[m](i, j)) {
          row.identity_ok = false;
          break;
        }
  return row;
}

/// One batched solve through the composed decorator stack versus one
/// plain fp64 batched solve of the same systems. The headline number is
/// the halo payload ratio: the mixed path moves most of its halo
/// traffic as fp32 planes, so bytes-per-member land near half the fp64
/// batch's (the fp64 outer refinement sweeps keep it above exactly
/// 0.5x).
struct ComposedRow {
  int nranks = 0;
  int batch = 0;
  double fp64_seconds = 0;      ///< best-of-repeats, fp64 batched solve
  double composed_seconds = 0;  ///< best-of-repeats, composed solve
  bool converged = true;        ///< all members, composed stack
  double max_residual = 0;      ///< worst member relative residual
  int refine_sweeps = 0;        ///< mixed outer sweeps of the composed run
  std::uint64_t p2p_bytes_fp64 = 0, p2p_bytes_composed = 0;

  double bytes_ratio() const {
    return p2p_bytes_fp64 == 0
               ? 0.0
               : static_cast<double>(p2p_bytes_composed) /
                     static_cast<double>(p2p_bytes_fp64);
  }
};

ComposedRow run_composed(const Case& c, int nranks, int batch,
                         int repeats) {
  using clock = std::chrono::steady_clock;
  ComposedRow row;
  row.nranks = nranks;
  row.batch = batch;

  std::vector<util::Field> rhs;
  for (int m = 0; m < batch; ++m)
    rhs.push_back(c.random_rhs(5000 + static_cast<std::uint64_t>(m)));

  auto body = [&](comm::Communicator& comm) {
    const int r = comm.rank();
    solver::BarotropicSolver fp64(comm, *c.halo, *c.grid, c.depth,
                                  *c.stencil, *c.decomp, pcsi_config());
    solver::BarotropicSolver composed(comm, *c.halo, *c.grid, c.depth,
                                      *c.stencil, *c.decomp,
                                      composed_config());
    std::vector<comm::DistField> b, x;
    for (int m = 0; m < batch; ++m) {
      b.emplace_back(*c.decomp, r);
      x.emplace_back(*c.decomp, r);
      b.back().load_global(rhs[m]);
    }
    std::vector<const comm::DistField*> bs;
    std::vector<comm::DistField*> xs;
    for (int m = 0; m < batch; ++m) {
      bs.push_back(&b[m]);
      xs.push_back(&x[m]);
    }

    for (int rep = 0; rep < repeats; ++rep) {
      for (auto& f : x) f.fill(0.0);
      (void)comm.allreduce_sum(0.0);
      auto snap = comm.costs().counters();
      const auto t0 = clock::now();
      (void)fp64.solve_batch(comm, bs, xs);
      const double t_fp64 =
          std::chrono::duration<double>(clock::now() - t0).count();
      const auto fp64_costs = comm.costs().since(snap);

      for (auto& f : x) f.fill(0.0);
      (void)comm.allreduce_sum(0.0);
      snap = comm.costs().counters();
      const auto t1 = clock::now();
      const auto stats = composed.solve_batch(comm, bs, xs);
      const double t_comp =
          std::chrono::duration<double>(clock::now() - t1).count();
      const auto comp_costs = comm.costs().since(snap);

      if (r == 0) {
        if (rep == 0) {
          row.p2p_bytes_fp64 = fp64_costs.p2p_bytes;
          row.p2p_bytes_composed = comp_costs.p2p_bytes;
          row.refine_sweeps = stats.refine_sweeps;
          for (const auto& ms : stats.members) {
            row.converged = row.converged && ms.converged;
            row.max_residual =
                std::max(row.max_residual, ms.relative_residual);
          }
        }
        row.fp64_seconds =
            rep == 0 ? t_fp64 : std::min(row.fp64_seconds, t_fp64);
        row.composed_seconds =
            rep == 0 ? t_comp : std::min(row.composed_seconds, t_comp);
      }
    }
  };

  if (nranks == 1) {
    comm::SerialComm comm;
    body(comm);
  } else {
    comm::ThreadTeam team(nranks);
    team.run(body);
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                const std::vector<ComposedRow>& composed) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"batch\",\n  \"solver\": \"pcsi+diagonal\",\n"
     << "  \"cases\": [\n";
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const Row& w = rows[k];
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"nranks\": %d, \"batch\": %d, "
        "\"seq_seconds\": %.6e, \"batch_seconds\": %.6e, "
        "\"solves_per_sec_seq\": %.3f, \"solves_per_sec_batch\": %.3f, "
        "\"efficiency\": %.3f, \"identity_ok\": %s, "
        "\"iterations_seq\": %d, \"iterations_batch\": %d, "
        "\"per_solve\": {\"halo_exchanges_seq\": %.1f, "
        "\"halo_exchanges_batch\": %.2f, \"p2p_messages_seq\": %.1f, "
        "\"p2p_messages_batch\": %.2f, \"allreduces_seq\": %.1f, "
        "\"allreduces_batch\": %.2f}}%s\n",
        w.nranks, w.batch, w.seq_seconds, w.batch_seconds,
        w.solves_per_sec_seq(), w.solves_per_sec_batch(), w.efficiency(),
        w.identity_ok ? "true" : "false", w.iterations_seq,
        w.iterations_batch, w.halo_exchanges_seq, w.halo_exchanges_batch,
        w.p2p_messages_seq, w.p2p_messages_batch, w.allreduces_seq,
        w.allreduces_batch, k + 1 < rows.size() ? "," : "");
    os << buf;
  }
  os << "  ],\n  \"composed\": [\n";
  for (std::size_t k = 0; k < composed.size(); ++k) {
    const ComposedRow& w = composed[k];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"nranks\": %d, \"batch\": %d, \"config\": "
        "\"pcsi+mixed+resilient+overlap\", "
        "\"fp64_seconds\": %.6e, \"composed_seconds\": %.6e, "
        "\"converged\": %s, \"max_residual\": %.3e, "
        "\"refine_sweeps\": %d, \"p2p_bytes_fp64\": %llu, "
        "\"p2p_bytes_composed\": %llu, \"bytes_ratio\": %.3f}%s\n",
        w.nranks, w.batch, w.fp64_seconds, w.composed_seconds,
        w.converged ? "true" : "false", w.max_residual, w.refine_sweeps,
        static_cast<unsigned long long>(w.p2p_bytes_fp64),
        static_cast<unsigned long long>(w.p2p_bytes_composed),
        w.bytes_ratio(), k + 1 < composed.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_batch.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0)
      smoke = true;
    else
      json_path = argv[a];
  }

  bench::print_header(
      "batch", "batched multi-RHS P-CSI vs sequential scalar solves");

  const std::vector<int> batches =
      smoke ? std::vector<int>{4} : std::vector<int>{1, 2, 4, 8, 16};
  // The smoke job runs the 4-rank case only: its batch win (amortised
  // thread handshakes and barriers) has a ~2x margin over the > 1.0
  // assertion, where the serial win (per-call overheads, cache) can be
  // noise-level on a busy CI runner.
  const std::vector<int> rank_counts =
      smoke ? std::vector<int>{4} : std::vector<int>{1, 4};
  const int repeats = 3;

  std::vector<Row> rows;
  std::printf(
      "%6s %6s %12s %12s %10s %9s %9s %9s %9s\n", "nranks", "B",
      "seq_s/sol", "bat_s/sol", "eff", "halo/sol", "msg/sol", "red/sol",
      "bits");
  for (const int nranks : rank_counts) {
    Case c(48, 40, 12, 10, nranks);
    for (const int batch : batches) {
      rows.push_back(run_case(c, nranks, batch, repeats));
      const Row& w = rows.back();
      std::printf(
          "%6d %6d %12.3e %12.3e %9.2fx %9.1f %9.1f %9.1f %9s\n",
          w.nranks, w.batch, w.seq_seconds / w.batch,
          w.batch_seconds / w.batch, w.efficiency(),
          w.halo_exchanges_batch, w.p2p_messages_batch,
          w.allreduces_batch, w.identity_ok ? "ok" : "DIFFER");
    }
  }

  // Composed stack: mixed x resilient x overlap on the batched core,
  // against the plain fp64 batch. fp32 halos at width B cut the p2p
  // payload roughly in half.
  const int composed_batch = smoke ? 4 : 8;
  std::vector<ComposedRow> composed;
  std::printf("\n%6s %6s %12s %12s %9s %9s %9s %9s\n", "nranks", "B",
              "fp64_s", "composed_s", "bytes", "sweeps", "max_res",
              "conv");
  for (const int nranks : rank_counts) {
    Case c(48, 40, 12, 10, nranks);
    composed.push_back(run_composed(c, nranks, composed_batch, repeats));
    const ComposedRow& w = composed.back();
    std::printf("%6d %6d %12.3e %12.3e %8.2fx %9d %9.1e %9s\n", w.nranks,
                w.batch, w.fp64_seconds, w.composed_seconds,
                w.bytes_ratio(), w.refine_sweeps, w.max_residual,
                w.converged ? "ok" : "DIVERGED");
  }

  write_json(json_path, rows, composed);
  std::printf("\nwrote %s\n", json_path.c_str());

  bool ok = true;
  for (const Row& w : rows) {
    if (!w.identity_ok) {
      std::printf("FAIL: batched members differ from scalar (nranks=%d "
                  "B=%d)\n",
                  w.nranks, w.batch);
      ok = false;
    }
    if (smoke && w.batch > 1 && w.efficiency() <= 1.0) {
      std::printf("FAIL: batch efficiency %.2f <= 1.0 (nranks=%d B=%d)\n",
                  w.efficiency(), w.nranks, w.batch);
      ok = false;
    }
  }
  for (const ComposedRow& w : composed) {
    if (!w.converged) {
      std::printf("FAIL: composed batched solve diverged (nranks=%d "
                  "B=%d, max_res=%.3e)\n",
                  w.nranks, w.batch, w.max_residual);
      ok = false;
    }
    // fp32 halo planes are half the payload of fp64 ones; the fp64
    // outer refinement keeps the ratio above exactly 0.5.
    if (w.nranks > 1 &&
        (w.bytes_ratio() <= 0.0 || w.bytes_ratio() >= 0.85)) {
      std::printf("FAIL: composed halo payload ratio %.3f not in "
                  "(0, 0.85) (nranks=%d B=%d)\n",
                  w.bytes_ratio(), w.nranks, w.batch);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
