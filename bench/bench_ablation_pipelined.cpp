// Extension ablation: pipelined CG (Ghysels & Vanroose, the paper's
// ref [16]) against ChronGear and P-CSI at scale — and, since the
// split-phase engine landed, a MEASURED overlapped-vs-blocking solve on
// a live multi-rank ThreadTeam problem.
//
// Part 1 (analytic): pipelining HIDES the reduction latency behind the
// matvec + preconditioner instead of removing reductions: per iteration,
//   T_pipe = max(T_reduction, T_comp + T_precond) + T_halo
// versus ChronGear's sum. The model shows why the paper chose the
// Chebyshev route for POP: once reductions cost more than a matvec,
// overlap can at best hide the smaller of the two, while P-CSI's rarer
// checks remove ~90% of the reduction bill outright.
//
// Part 2 (measured): ChronGear+EVP and P-CSI+EVP run blocking and
// overlapped (SolverOptions::overlap) on a 4-rank ThreadTeam; the
// CostTracker's posted/exposed split quantifies how much communication
// the interior/rim overlap actually hid. Iteration counts and residuals
// are bitwise identical between the modes — the bench checks this.
// Writes BENCH_overlap.json (run from the repo root):
//
//   ./build/bench/bench_ablation_pipelined [output.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/pcsi.hpp"

using namespace minipop;

namespace {

struct ModelRow {
  int cores;
  double chrongear_diag;
  double pipecg_overlapped;
  double pcsi_evp;
};

struct MeasuredSolve {
  std::string solver;
  std::string mode;  ///< "blocking" or "overlap"
  double seconds = 0;
  int iterations = 0;
  double rel_residual = 0;
  comm::CostCounters costs;  ///< summed over ranks (counts: rank 0)
};

/// Run `solves` warm solves of `make_solver()`'s solver on a ThreadTeam
/// and return the best-of-repeats wall time plus rank-summed counters.
template <typename MakeSolver>
MeasuredSolve run_team_solve(const std::string& name, const std::string& mode,
                             const grid::NinePointStencil& stencil,
                             const grid::CurvilinearGrid& grid,
                             const util::Field& depth,
                             const grid::Decomposition& decomp,
                             const util::Field& rhs_global, int nranks,
                             const evp::BlockEvpOptions& evp_opt,
                             MakeSolver&& make_solver, int repeats = 3) {
  MeasuredSolve out;
  out.solver = name;
  out.mode = mode;
  comm::HaloExchanger halo(decomp);
  std::vector<double> rank_seconds(nranks, 0.0);
  std::vector<comm::CostCounters> rank_costs(nranks);
  std::vector<solver::SolveStats> rank_stats(nranks);

  comm::ThreadTeam team(nranks);
  team.run([&](comm::Communicator& comm) {
    const int rank = comm.rank();
    solver::DistOperator a(stencil, decomp, rank);
    evp::BlockEvpPreconditioner m(a, grid, depth, evp_opt);
    auto solver = make_solver();
    comm::DistField b(decomp, rank), x(decomp, rank);
    b.load_global(rhs_global);

    double best = 0.0;
    solver::SolveStats stats;
    for (int rep = 0; rep < repeats; ++rep) {
      x.fill(0.0);
      comm.barrier();
      const auto snapshot = comm.costs().counters();
      const auto t0 = std::chrono::steady_clock::now();
      stats = solver->solve(comm, halo, a, m, b, x);
      comm.barrier();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (rep == 0 || secs < best) {
        best = secs;
        rank_costs[rank] = comm.costs().since(snapshot);
      }
    }
    rank_seconds[rank] = best;
    rank_stats[rank] = stats;
  });

  // Wall time: slowest rank. Seconds-type counters: summed over ranks
  // (total posted/exposed communication). Count-type counters: rank 0
  // (collective call counts agree across ranks).
  out.seconds = *std::max_element(rank_seconds.begin(), rank_seconds.end());
  out.costs = rank_costs[0];
  for (int r = 1; r < nranks; ++r) {
    out.costs.posted_comm_seconds += rank_costs[r].posted_comm_seconds;
    out.costs.exposed_comm_seconds += rank_costs[r].exposed_comm_seconds;
  }
  out.iterations = rank_stats[0].iterations;
  out.rel_residual = rank_stats[0].relative_residual;
  return out;
}

bool write_json(const std::string& path, int nx, int ny, int nranks,
                const std::vector<MeasuredSolve>& solves,
                const std::vector<ModelRow>& model) {
  std::ofstream os(path);
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"overlap\",\n"
     << "  \"grid\": {\"nx\": " << nx << ", \"ny\": " << ny
     << ", \"ranks\": " << nranks << "},\n"
     << "  \"solves\": [\n";
  for (std::size_t k = 0; k < solves.size(); ++k) {
    const auto& s = solves[k];
    const auto acct = perf::overlap_accounting(s.costs);
    os << "    {\"solver\": \"" << s.solver << "\", \"mode\": \"" << s.mode
       << "\", \"seconds\": " << s.seconds
       << ", \"iterations\": " << s.iterations
       << ", \"relative_residual\": " << s.rel_residual
       << ", \"posted_comm_seconds\": " << acct.posted_seconds
       << ", \"exposed_comm_seconds\": " << acct.exposed_seconds
       << ", \"hidden_fraction\": " << acct.hidden_fraction()
       << ", \"requests\": " << s.costs.requests
       << ", \"halo_exchanges\": " << s.costs.halo_exchanges
       << ", \"allreduces\": " << s.costs.allreduces << "}"
       << (k + 1 < solves.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"model_seconds_per_day\": [\n";
  for (std::size_t k = 0; k < model.size(); ++k) {
    const auto& r = model[k];
    os << "    {\"cores\": " << r.cores
       << ", \"chrongear_diag\": " << r.chrongear_diag
       << ", \"pipecg_diag_overlapped\": " << r.pipecg_overlapped
       << ", \"pcsi_evp\": " << r.pcsi_evp << "}"
       << (k + 1 < model.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flush();
  return os.good();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string json_path =
      cli.positional().empty() ? "BENCH_overlap.json" : cli.positional()[0];
  auto grid = perf::pop_0p1deg_case();
  auto machine = perf::yellowstone_profile();
  perf::PopTimingModel model(machine, grid,
                             perf::paper_iteration_model(grid));

  bench::print_header("Ablation: pipelined CG",
                      "modeled 0.1deg barotropic seconds/day on "
                      "Yellowstone — overlap vs removal of reductions");

  std::vector<ModelRow> model_rows;
  util::Table t({"cores", "chrongear+diag", "pipecg+diag (overlapped)",
                 "pcsi+evp"});
  for (int p : {470, 1125, 2700, 5400, 10800, 16875}) {
    // ChronGear: straight sum of the Eq. 2 components.
    auto cg = perf::iteration_costs(machine, perf::Config::kCgDiag,
                                    grid.points, p, grid.check_frequency);
    const double k_cg =
        model.iterations_of(perf::Config::kCgDiag, p);
    // Pipelined CG: same Krylov iteration count, same reduction, but the
    // reduction overlaps the computation; extra vector work (4 more
    // axpys = 8 ops/pt) is exposed.
    const double pts = static_cast<double>(grid.points) / p;
    const double comp = (perf::compute_ops_per_point(perf::Config::kCgDiag)
                         + 8.0) * pts * machine.theta;
    const double overlapped =
        std::max(cg.reduction, comp) + cg.halo;
    auto pe = model.barotropic_per_day(perf::Config::kPcsiEvp, p);
    ModelRow row;
    row.cores = p;
    row.chrongear_diag =
        model.barotropic_per_day(perf::Config::kCgDiag, p).total();
    row.pipecg_overlapped = overlapped * k_cg * grid.steps_per_day;
    row.pcsi_evp = pe.total();
    model_rows.push_back(row);
    t.row()
        .add_int(p)
        .add(row.chrongear_diag, 2)
        .add(row.pipecg_overlapped, 2)
        .add(row.pcsi_evp, 2);
  }
  t.print(std::cout);
  std::cout << "\nShape check: pipelining helps exactly while the "
               "reduction still fits under the\nmatvec (low/mid core "
               "counts) and saturates once reductions dominate; P-CSI\n"
               "keeps winning at scale because its reductions are rare, "
               "not merely hidden\n(paper Sec. 7's rationale for "
               "abandoning the CG family).\n";

  // --- Part 2: measured split-phase overlap on a live problem ----------
  bench::print_header("Measured overlap",
                      "blocking vs split-phase solves, 4-rank ThreadTeam, "
                      "posted/exposed comm split");
  const int nranks = 4;
  bench::LiveCase c = bench::make_live_case("1deg", 0.5, 48);
  const int nx = c.grid->nx(), ny = c.grid->ny();
  grid::Decomposition decomp(nx, ny, c.grid->periodic_x(),
                             c.stencil->mask(), 48, 48, nranks);

  solver::SolverOptions base_opt;
  base_opt.rel_tolerance = 1e-10;
  evp::BlockEvpOptions evp_opt;

  // P-CSI eigenvalue bounds: computed once, serially, shared by both
  // modes (Lanczos is part of setup, not the solve being measured).
  solver::EigenBounds bounds;
  {
    grid::Decomposition d1(nx, ny, c.grid->periodic_x(),
                           c.stencil->mask(), nx, ny, 1);
    comm::SerialComm comm;
    comm::HaloExchanger halo(d1);
    solver::DistOperator a(*c.stencil, d1, 0);
    evp::BlockEvpPreconditioner m(a, *c.grid, c.depth, evp_opt);
    solver::LanczosOptions lopt;
    bounds = solver::estimate_eigenvalue_bounds(comm, halo, a, m, lopt)
                 .bounds;
  }

  std::vector<MeasuredSolve> solves;
  for (bool overlap : {false, true}) {
    solver::SolverOptions opt = base_opt;
    opt.overlap = overlap;
    const std::string mode = overlap ? "overlap" : "blocking";
    solves.push_back(run_team_solve(
        "chrongear+evp", mode, *c.stencil, *c.grid, c.depth, decomp,
        c.rhs_global, nranks, evp_opt,
        [&] { return std::make_unique<solver::ChronGearSolver>(opt); }));
    solves.push_back(run_team_solve(
        "pcsi+evp", mode, *c.stencil, *c.grid, c.depth, decomp,
        c.rhs_global, nranks, evp_opt,
        [&] { return std::make_unique<solver::PcsiSolver>(bounds, opt); }));
  }

  std::printf("%-16s %-9s %9s %6s %12s %12s %8s\n", "solver", "mode",
              "ms/solve", "iters", "posted ms", "exposed ms", "hidden");
  for (const auto& s : solves) {
    const auto acct = perf::overlap_accounting(s.costs);
    std::printf("%-16s %-9s %9.2f %6d %12.3f %12.3f %7.1f%%\n",
                s.solver.c_str(), s.mode.c_str(), s.seconds * 1e3,
                s.iterations, acct.posted_seconds * 1e3,
                acct.exposed_seconds * 1e3, 100.0 * acct.hidden_fraction());
  }

  // The engine's contract: overlap changes WHEN communication happens,
  // never WHAT is computed.
  bool identical = true;
  for (const auto& s : solves) {
    for (const auto& o : solves) {
      if (s.solver == o.solver && s.mode != o.mode &&
          (s.iterations != o.iterations ||
           s.rel_residual != o.rel_residual))
        identical = false;
    }
  }
  std::printf("\nbitwise identity (iterations + final residual): %s\n",
              identical ? "OK" : "VIOLATED");

  if (!write_json(json_path, nx, ny, nranks, solves, model_rows)) {
    std::fprintf(stderr, "\nerror: could not write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return identical ? 0 : 1;
}
