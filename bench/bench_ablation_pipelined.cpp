// Extension ablation: pipelined CG (Ghysels & Vanroose, the paper's
// ref [16]) against ChronGear and P-CSI at scale. Pipelining HIDES the
// reduction latency behind the matvec + preconditioner instead of
// removing reductions: per iteration,
//   T_pipe = max(T_reduction, T_comp + T_precond) + T_halo
// versus ChronGear's sum. The model shows why the paper chose the
// Chebyshev route for POP: once reductions cost more than a matvec,
// overlap can at best hide the smaller of the two, while P-CSI's rarer
// checks remove ~90% of the reduction bill outright.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto grid = perf::pop_0p1deg_case();
  auto machine = perf::yellowstone_profile();
  perf::PopTimingModel model(machine, grid,
                             perf::paper_iteration_model(grid));

  bench::print_header("Ablation: pipelined CG",
                      "modeled 0.1deg barotropic seconds/day on "
                      "Yellowstone — overlap vs removal of reductions");

  util::Table t({"cores", "chrongear+diag", "pipecg+diag (overlapped)",
                 "pcsi+evp"});
  for (int p : {470, 1125, 2700, 5400, 10800, 16875}) {
    // ChronGear: straight sum of the Eq. 2 components.
    auto cg = perf::iteration_costs(machine, perf::Config::kCgDiag,
                                    grid.points, p, grid.check_frequency);
    const double k_cg =
        model.iterations_of(perf::Config::kCgDiag, p);
    // Pipelined CG: same Krylov iteration count, same reduction, but the
    // reduction overlaps the computation; extra vector work (4 more
    // axpys = 8 ops/pt) is exposed.
    const double pts = static_cast<double>(grid.points) / p;
    const double comp = (perf::compute_ops_per_point(perf::Config::kCgDiag)
                         + 8.0) * pts * machine.theta;
    const double overlapped =
        std::max(cg.reduction, comp) + cg.halo;
    auto pe = model.barotropic_per_day(perf::Config::kPcsiEvp, p);
    t.row()
        .add_int(p)
        .add(model.barotropic_per_day(perf::Config::kCgDiag, p).total(), 2)
        .add(overlapped * k_cg * grid.steps_per_day, 2)
        .add(pe.total(), 2);
  }
  t.print(std::cout);
  std::cout << "\nShape check: pipelining helps exactly while the "
               "reduction still fits under the\nmatvec (low/mid core "
               "counts) and saturates once reductions dominate; P-CSI\n"
               "keeps winning at scale because its reductions are rare, "
               "not merely hidden\n(paper Sec. 7's rationale for "
               "abandoning the CG family).\n";
  return 0;
}
