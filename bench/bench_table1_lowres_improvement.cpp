// Paper Table 1: percent improvement of TOTAL 1-degree POP execution
// time versus the diagonal-preconditioned ChronGear baseline, for the
// three new solver/preconditioner options, at 48..768 cores.
// Paper row for pcsi+evp: -2.4%, 0.4%, 7.4%, 14.4%, 16.7%.
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto grid = perf::pop_1deg_case();
  perf::PopTimingModel model(perf::yellowstone_profile(), grid,
                             perf::paper_iteration_model(grid));

  bench::print_header("Table 1",
                      "total 1deg POP improvement vs chrongear+diagonal, "
                      "Yellowstone");

  util::Table t(
      {"config", "48", "96", "192", "384", "768", "paper@768"});
  struct Row {
    perf::Config c;
    const char* paper;
  };
  for (auto [c, paper] :
       {Row{perf::Config::kCgEvp, "12.1%"},
        Row{perf::Config::kPcsiDiag, "12.6%"},
        Row{perf::Config::kPcsiEvp, "16.7%"}}) {
    auto& row = t.row();
    row.add(perf::to_string(c));
    for (int p : {48, 96, 192, 384, 768})
      row.add_pct(model.improvement_vs_baseline(c, p));
    row.add(paper);
  }
  t.print(std::cout);
  std::cout << "\nShape check: improvements grow with core count; pcsi+evp "
               "can be slightly\nnegative at 48 cores (paper: -2.4%).\n";
  (void)cli;
  return 0;
}
