// Resilience benchmark: the cost and the payoff of the detect → recover
// → fall back layer (src/solver/resilient_solver.*, src/fault/*) and of
// the end-to-end integrity layer (DESIGN.md §12).
//
// Three experiments, printed as tables and written to
// BENCH_resilience.json — run from the repo root so the JSON lands
// there:
//
//   ./build-faults/bench/bench_resilience [--smoke] [output.json]
//
// 1. Guard overhead: raw solver vs ResilientSolver-decorated solver on
//    the same fault-free problem. The decorator adds one checkpoint copy
//    and one scalar agreement allreduce per solve; the acceptance target
//    is < 1% wall time.
// 1b. Integrity overhead: the same raw solver with every IntegrityOptions
//    knob at the production cadence (guarded reductions on, ABFT audit
//    every 20th convergence check, true-residual audit every 40th) vs
//    all-off. The < 2% acceptance gate is evaluated on the MODELED
//    overhead — both variants' exact operation counts priced through the
//    paper's alpha-beta-theta machine model at p=1024 — because the
//    counters are deterministic while wall-clock noise on a shared box
//    exceeds the budget being enforced. Measured wall time is still
//    reported for context. With --smoke the binary runs ONLY the
//    overhead experiments and exits nonzero when that gate (or a
//    campaign silent-wrong-answer, in full runs) is violated.
// 2. Fault campaign (needs -DMINIPOP_FAULTS=ON; skipped and marked in
//    the JSON otherwise): a matrix of injection site x fault rate x
//    solver over a 4-rank virtual-MPI team, including the silent-data-
//    corruption sites the integrity layer exists for (halo wire bit
//    flips behind the CRC, stencil-coefficient flips caught by the ABFT
//    checksum, corrupted allreduce contributions caught by the guarded
//    duplicate). Each cell replays deterministic seeded faults and
//    reports the recovery rate (solves that still converged to
//    tolerance), the mean detection latency in iterations, and the
//    recovery actions taken. Silent wrong answers fail the run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/fault/fault_injector.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/perf/machine.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/pcg.hpp"
#include "src/solver/pcsi.hpp"
#include "src/solver/resilient_solver.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mf = minipop::fault;
namespace mg = minipop::grid;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

struct Problem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  mu::Field b_global;
};

Problem make_problem(int nx, int ny, int block, int nranks,
                     std::uint64_t seed = 11) {
  Problem p;
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = ny;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  p.grid = std::make_unique<mg::CurvilinearGrid>(spec);
  p.depth = mg::bowl_bathymetry(*p.grid, 4000.0);
  const double phi = mg::barotropic_phi(600.0);
  p.stencil = std::make_unique<mg::NinePointStencil>(*p.grid, p.depth, phi);
  p.decomp = std::make_unique<mg::Decomposition>(
      nx, ny, /*periodic_x=*/false, p.stencil->mask(), block, block, nranks);
  mu::Xoshiro256 rng(seed);
  p.b_global = mu::Field(nx, ny, 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (p.stencil->mask()(i, j)) p.b_global(i, j) = rng.uniform(-1, 1);
  return p;
}

ms::EigenBounds lanczos_bounds_serial(const Problem& p) {
  mg::Decomposition d1(p.stencil->nx(), p.stencil->ny(),
                       p.stencil->periodic_x(), p.stencil->mask(),
                       p.stencil->nx(), p.stencil->ny(), 1);
  mc::SerialComm comm;
  mc::HaloExchanger halo(d1);
  ms::DistOperator a(*p.stencil, d1, 0);
  ms::DiagonalPreconditioner m(a);
  ms::LanczosOptions lopt;
  lopt.rel_tolerance = 0.02;
  return ms::estimate_eigenvalue_bounds(comm, halo, a, m, lopt).bounds;
}

using SolverFactory =
    std::function<std::unique_ptr<ms::IterativeSolver>(int rank)>;

struct SolveRun {
  mu::Field x;
  ms::SolveStats stats;
  std::vector<ms::RecoveryEvent> events;
  bool threw = false;  ///< a rank escaped with an (unrecovered) exception
};

#if MINIPOP_FAULTS
/// One solve over `nranks` virtual ranks (1 = SerialComm) with a
/// diagonal preconditioner; gathers the solution and rank 0's stats and
/// recovery log. Only the fault campaigns need it.
SolveRun run_with(const Problem& p, int nranks, const SolverFactory& make,
                  double recv_timeout_ms = 0.0, bool halo_crc = false) {
  SolveRun out;
  out.x = mu::Field(p.decomp->nx_global(), p.decomp->ny_global(), 0.0);
  std::vector<ms::SolveStats> stats(nranks);
  mc::HaloExchanger halo(*p.decomp);
  halo.set_crc(halo_crc);
  auto body = [&](mc::Communicator& comm) {
    ms::DistOperator a(*p.stencil, *p.decomp, comm.rank());
    ms::DiagonalPreconditioner m(a);
    std::unique_ptr<ms::IterativeSolver> s = make(comm.rank());
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(p.b_global);
    stats[comm.rank()] = s->solve(comm, halo, a, m, b, x);
    x.store_global(out.x);  // disjoint interiors; no race
    if (comm.rank() == 0)
      if (auto* rs = dynamic_cast<ms::ResilientSolver*>(s.get()))
        out.events = rs->events();
  };
  try {
    if (nranks == 1) {
      mc::SerialComm comm;
      body(comm);
    } else {
      mc::ThreadTeam team(nranks);
      if (recv_timeout_ms > 0.0) team.set_recv_timeout(recv_timeout_ms);
      team.run(body);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench] solve escaped: %s\n", e.what());
    out.threw = true;
  }
  out.stats = stats[0];
  return out;
}
#endif  // MINIPOP_FAULTS

ms::SolverOptions solve_options() {
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.check_frequency = 5;
  opt.divergence_factor = 1e4;
  return opt;
}

/// Production integrity cadence: cheap enough to leave on (< 2% wall
/// time, gated below), frequent enough to bound silent-corruption
/// exposure to ~100 iterations. Each ABFT audit costs one masked sum
/// sweep and each true-residual audit one operator apply, so the
/// intervals (in units of convergence checks) set the overhead directly.
ms::SolverOptions integrity_options() {
  ms::SolverOptions opt = solve_options();
  opt.integrity.guarded_reductions = true;
  opt.integrity.abft_interval = 20;
  opt.integrity.true_residual_interval = 40;
  return opt;
}

std::unique_ptr<ms::IterativeSolver> make_primary(const std::string& kind,
                                                  ms::EigenBounds bounds,
                                                  const ms::SolverOptions& opt) {
  if (kind == "pcsi") return std::make_unique<ms::PcsiSolver>(bounds, opt);
  return std::make_unique<ms::ChronGearSolver>(opt);
}

std::unique_ptr<ms::IterativeSolver> make_primary(const std::string& kind,
                                                  ms::EigenBounds bounds) {
  return make_primary(kind, bounds, solve_options());
}

/// The production recovery chain: restart x2 → (P-CSI) re-estimate
/// bounds → ChronGear → diagonal-preconditioned PCG.
SolverFactory decorated(const std::string& kind, ms::EigenBounds bounds) {
  return [kind, bounds](int) -> std::unique_ptr<ms::IterativeSolver> {
    auto rs = std::make_unique<ms::ResilientSolver>(make_primary(kind, bounds));
    if (kind != "cg")
      rs->add_fallback(std::make_unique<ms::ChronGearSolver>(solve_options()));
    rs->add_fallback(std::make_unique<ms::PcgSolver>(solve_options()),
                     /*use_diagonal_precond=*/true);
    return rs;
  };
}

SolverFactory raw(const std::string& kind, ms::EigenBounds bounds) {
  return [kind, bounds](int) { return make_primary(kind, bounds); };
}

#if MINIPOP_FAULTS
/// Recovery chain with the integrity layer on: how the solver is meant
/// to run when silent data corruption is in the threat model.
SolverFactory decorated_integrity(const std::string& kind,
                                  ms::EigenBounds bounds) {
  return [kind, bounds](int) -> std::unique_ptr<ms::IterativeSolver> {
    const ms::SolverOptions opt = integrity_options();
    auto rs = std::make_unique<ms::ResilientSolver>(
        make_primary(kind, bounds, opt));
    if (kind != "cg")
      rs->add_fallback(std::make_unique<ms::ChronGearSolver>(opt));
    rs->add_fallback(std::make_unique<ms::PcgSolver>(opt),
                     /*use_diagonal_precond=*/true);
    return rs;
  };
}
#endif  // MINIPOP_FAULTS

#if MINIPOP_FAULTS
double max_rel_error(const mu::Field& a, const mu::Field& ref) {
  double scale = 0.0, err = 0.0;
  for (const double v : ref) scale = std::max(scale, std::abs(v));
  for (int j = 0; j < a.ny(); ++j)
    for (int i = 0; i < a.nx(); ++i)
      err = std::max(err, std::abs(a(i, j) - ref(i, j)));
  return scale > 0 ? err / scale : err;
}
#endif  // MINIPOP_FAULTS

// --- experiment 1: guard overhead -------------------------------------

struct OverheadResult {
  std::string solver;
  double raw_ms = 0;        ///< best-of batch mean, baseline variant
  double decorated_ms = 0;  ///< best-of batch mean, measured variant
  double overhead = 0;      ///< median per-round ratio, in percent
  /// Overhead of the variant's exact operation counts priced through the
  /// paper's alpha-beta-theta machine model (percent). Deterministic —
  /// this is what the < 2% integrity gate checks, because wall-clock
  /// noise on a shared box easily exceeds the budget being enforced.
  double modeled = 0;
  double overhead_pct() const { return overhead; }
};

/// Price a solve's counted operations with the paper's cost model at a
/// production-scale partition: theta per flop, alpha/beta per message
/// and byte, and a log2(p)-hop allreduce whose payload bytes ride each
/// hop. The ON/OFF *ratio* is what matters; the absolute constants
/// cancel out of it.
double modeled_seconds(const mc::CostCounters& c,
                       const minipop::perf::MachineProfile& m, int p) {
  const double hops = p > 1 ? std::log2(static_cast<double>(p)) : 0.0;
  return m.theta * static_cast<double>(c.flops) +
         static_cast<double>(c.p2p_messages) * m.alpha_p2p +
         static_cast<double>(c.p2p_bytes) * m.beta +
         static_cast<double>(c.allreduces) * hops * m.alpha_reduce(p) +
         static_cast<double>(c.allreduce_doubles) * 8.0 * hops * m.beta;
}

/// Time `base` vs `variant` in alternating batches. The per-solve cost
/// difference we care about is far below run-to-run noise, so each round
/// times both variants back to back (order swapped every round to cancel
/// slow drift) and the reported overhead is the MEDIAN of the per-round
/// ratios — robust against a stray slow batch that a min-of-mins would
/// attribute to whichever variant it hit.
void time_pair(const std::function<void()>& base,
               const std::function<void()>& variant, OverheadResult& res) {
  using clock = std::chrono::steady_clock;
  auto batch_ms = [](const std::function<void()>& fn, int reps) {
    const auto t0 = clock::now();
    for (int r = 0; r < reps; ++r) fn();
    return std::chrono::duration<double, std::milli>(clock::now() - t0)
               .count() /
           reps;
  };
  base();  // warm caches before the first timed batch
  variant();
  const int reps = 8, rounds = 12;
  res.raw_ms = res.decorated_ms = 1e300;
  std::vector<double> ratio;
  for (int k = 0; k < rounds; ++k) {
    double a, b;
    if (k % 2 == 0) {
      a = batch_ms(base, reps);
      b = batch_ms(variant, reps);
    } else {
      b = batch_ms(variant, reps);
      a = batch_ms(base, reps);
    }
    res.raw_ms = std::min(res.raw_ms, a);
    res.decorated_ms = std::min(res.decorated_ms, b);
    ratio.push_back(b / a);
  }
  std::sort(ratio.begin(), ratio.end());
  const double med = 0.5 * (ratio[ratio.size() / 2 - 1] +
                            ratio[ratio.size() / 2]);
  res.overhead = (med - 1.0) * 100.0;
}

OverheadResult measure_overhead(const Problem& p, const std::string& kind,
                                ms::EigenBounds bounds) {
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  ms::DiagonalPreconditioner m(a);
  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);

  auto s_raw = raw(kind, bounds)(0);
  auto s_dec = decorated(kind, bounds)(0);
  auto solve_raw = [&] {
    x.fill(0.0);
    s_raw->solve(comm, halo, a, m, b, x);
  };
  auto solve_dec = [&] {
    x.fill(0.0);
    s_dec->solve(comm, halo, a, m, b, x);
  };

  OverheadResult res;
  res.solver = kind;
  time_pair(solve_raw, solve_dec, res);
  return res;
}

/// Integrity layer ON (production cadence) vs OFF, same raw solver.
/// `raw_ms` is integrity-off, `decorated_ms` is integrity-on.
OverheadResult measure_integrity_overhead(const Problem& p,
                                          const std::string& kind,
                                          ms::EigenBounds bounds) {
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  ms::DiagonalPreconditioner m(a);
  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);

  auto s_off = make_primary(kind, bounds, solve_options());
  auto s_on = make_primary(kind, bounds, integrity_options());
  ms::SolveStats st_off, st_on;
  auto solve_off = [&] {
    x.fill(0.0);
    st_off = s_off->solve(comm, halo, a, m, b, x);
  };
  auto solve_on = [&] {
    x.fill(0.0);
    st_on = s_on->solve(comm, halo, a, m, b, x);
  };
  OverheadResult res;
  res.solver = kind;
  time_pair(solve_off, solve_on, res);
  // Deterministic modeled overhead from the exact operation counts,
  // priced at a production-scale partition on the Yellowstone profile.
  const minipop::perf::MachineProfile prof =
      minipop::perf::yellowstone_profile();
  const int ranks = 1024;
  res.modeled = (modeled_seconds(st_on.costs, prof, ranks) /
                     modeled_seconds(st_off.costs, prof, ranks) -
                 1.0) *
                100.0;
  return res;
}

// --- experiment 2: fault campaign -------------------------------------

struct CampaignCell {
  std::string site;
  std::string schedule;  ///< "event N" or "p=<rate>"
  std::string solver;
  int trials = 0;
  int recovered = 0;   ///< converged AND solution close to fault-free
  int typed_fail = 0;  ///< gave up with a typed FailureKind (no hang/lie)
  int silent = 0;      ///< converged but wrong answer — must stay 0
  double mean_detect_iters = 0;  ///< iterations burned in failed attempts
  std::vector<std::string> actions;  ///< distinct recovery actions seen
  double recovery_rate() const {
    return trials ? static_cast<double>(recovered) / trials : 0.0;
  }
};

#if MINIPOP_FAULTS

void note_actions(CampaignCell& cell, const SolveRun& run) {
  for (const auto& ev : run.events)
    if (std::find(cell.actions.begin(), cell.actions.end(), ev.action) ==
        cell.actions.end())
      cell.actions.push_back(ev.action);
}

/// Run `trials` decorated solves under `plan` (seed varied per trial)
/// and score them against the fault-free solution.
CampaignCell run_cell(const Problem& p, int nranks, const std::string& site,
                      const std::string& schedule, const std::string& kind,
                      ms::EigenBounds bounds, const mu::Field& clean,
                      mf::FaultPlan plan, int trials,
                      double recv_timeout_ms = 0.0,
                      const SolverFactory* factory = nullptr,
                      bool halo_crc = false) {
  CampaignCell cell;
  cell.site = site;
  cell.schedule = schedule;
  cell.solver = kind;
  cell.trials = trials;
  double detect_sum = 0;
  long detect_n = 0;
  for (int t = 0; t < trials; ++t) {
    plan.seed = 977 + 31 * static_cast<std::uint64_t>(t);
    SolveRun run;
    {
      mf::FaultScope scope(plan);
      run = run_with(p, nranks,
                     factory ? *factory : decorated(kind, bounds),
                     recv_timeout_ms, halo_crc);
    }
    note_actions(cell, run);
    for (const auto& ev : run.events) {
      detect_sum += ev.iterations;
      ++detect_n;
    }
    if (run.threw) continue;  // escaped exception: neither recovered nor typed
    if (run.stats.converged) {
      if (max_rel_error(run.x, clean) < 1e-4)
        ++cell.recovered;
      else
        ++cell.silent;
    } else if (run.stats.failure != ms::FailureKind::kNone) {
      ++cell.typed_fail;
    }
  }
  cell.mean_detect_iters = detect_n ? detect_sum / detect_n : 0.0;
  return cell;
}

std::vector<CampaignCell> run_campaign(const Problem& p,
                                       ms::EigenBounds bounds,
                                       const mu::Field& clean_cg,
                                       const mu::Field& clean_pcsi) {
  const int nranks = 4;
  std::vector<CampaignCell> cells;
  auto clean_for = [&](const std::string& kind) -> const mu::Field& {
    return kind == "pcsi" ? clean_pcsi : clean_cg;
  };

  for (const std::string kind : {"cg", "pcsi"}) {
    // Scheduled one-shot faults: deterministic worst cases.
    {
      mf::FaultRule r;
      r.site = mf::FaultSite::kSolverVector;
      r.rank = 1;
      r.trigger_event = 6;
      r.make_nan = true;
      cells.push_back(run_cell(p, nranks, "solver_vector_nan", "event 6",
                               kind, bounds, clean_for(kind),
                               mf::FaultPlan{}.add(r), 3));
    }
    {
      mf::FaultRule r;
      r.site = mf::FaultSite::kHaloPayload;
      r.rank = 1;
      // Mid-solve, when the exchanged vectors are nonzero — an exponent
      // flip then overflows in the stencil sweep instead of landing on
      // a still-zero entry where it would be benign.
      r.trigger_event = 40;
      r.bit = 62;
      cells.push_back(run_cell(p, nranks, "halo_bitflip", "event 40", kind,
                               bounds, clean_for(kind),
                               mf::FaultPlan{}.add(r), 3));
    }
    {
      mf::FaultRule r;
      r.site = mf::FaultSite::kMailbox;
      r.rank = 1;
      r.trigger_event = 6;
      r.mailbox = mf::MailboxAction::kDrop;
      cells.push_back(run_cell(p, nranks, "mailbox_drop", "event 6", kind,
                               bounds, clean_for(kind),
                               mf::FaultPlan{}.add(r), 3,
                               /*recv_timeout_ms=*/500.0));
    }
    {
      mf::FaultRule r;
      r.site = mf::FaultSite::kRankStall;
      r.rank = 2;
      r.trigger_event = 4;
      r.delay_ms = 30.0;
      cells.push_back(run_cell(p, nranks, "rank_stall", "event 4", kind,
                               bounds, clean_for(kind),
                               mf::FaultPlan{}.add(r), 3));
    }
    // --- silent-data-corruption sites (integrity layer required) ---
    // The integrity-enabled chain detects, types, and recovers each of
    // these; without it they would be silent wrong answers or hangs.
    const SolverFactory integ = decorated_integrity(kind, bounds);
    {
      // Low mantissa bit of a wire payload flipped after the CRC was
      // computed: numerically negligible, only the CRC trailer sees it.
      mf::FaultRule r;
      r.site = mf::FaultSite::kHaloBitFlip;
      r.rank = 1;
      r.trigger_event = 6;
      r.bit = 0;
      cells.push_back(run_cell(p, nranks, "halo_crc_bitflip", "event 6",
                               kind, bounds, clean_for(kind),
                               mf::FaultPlan{}.add(r), 3,
                               /*recv_timeout_ms=*/0.0, &integ,
                               /*halo_crc=*/true));
    }
    {
      // Exponent flip of one stored stencil coefficient: persistent
      // operator corruption, caught by the ABFT column-sum audit and
      // cured by repair_operator.
      mf::FaultRule r;
      r.site = mf::FaultSite::kCoeffBitFlip;
      r.rank = 1;
      r.trigger_event = 2;
      r.bit = 62;
      cells.push_back(run_cell(p, nranks, "coeff_bitflip", "event 2", kind,
                               bounds, clean_for(kind),
                               mf::FaultPlan{}.add(r), 3,
                               /*recv_timeout_ms=*/0.0, &integ));
    }
    {
      // One rank's contribution to a norm allreduce corrupted in flight:
      // the guarded duplicate cross-check catches the bitwise mismatch.
      mf::FaultRule r;
      r.site = mf::FaultSite::kReductionCorrupt;
      r.rank = 2;
      r.trigger_event = 1;
      cells.push_back(run_cell(p, nranks, "reduction_corrupt", "event 1",
                               kind, bounds, clean_for(kind),
                               mf::FaultPlan{}.add(r), 3,
                               /*recv_timeout_ms=*/0.0, &integ));
    }
    // Probabilistic rates: every solver-vector sweep may flip a mantissa
    // bit. Several seeds per rate.
    for (const double rate : {0.002, 0.02}) {
      mf::FaultRule r;
      r.site = mf::FaultSite::kSolverVector;
      r.probability = rate;
      r.max_fires = 0;  // unlimited
      r.bit = 62;       // exponent flip: detectable, not silent
      char sched[32];
      std::snprintf(sched, sizeof sched, "p=%g", rate);
      cells.push_back(run_cell(p, nranks, "solver_vector_bitflip", sched,
                               kind, bounds, clean_for(kind),
                               mf::FaultPlan{}.add(r), 5));
    }
  }
  // P-CSI-only: corrupted Chebyshev interval, recovered by Lanczos
  // re-estimation.
  {
    mf::FaultRule r;
    r.site = mf::FaultSite::kEigenBounds;
    r.trigger_event = 0;
    r.nu_scale = 1e-3;
    r.mu_scale = 1e-3;
    cells.push_back(run_cell(p, nranks, "eigen_bounds", "event 0", "pcsi",
                             bounds, clean_pcsi, mf::FaultPlan{}.add(r), 3));
  }
  return cells;
}

#endif  // MINIPOP_FAULTS

// --- output ------------------------------------------------------------

bool write_json(const std::string& path, const Problem& p,
                const std::vector<OverheadResult>& overhead,
                const std::vector<OverheadResult>& integrity,
                const std::vector<CampaignCell>& cells) {
  std::ofstream os(path);
  os.precision(6);
  os << "{\n  \"bench\": \"resilience\",\n"
     << "  \"grid\": {\"nx\": " << p.decomp->nx_global()
     << ", \"ny\": " << p.decomp->ny_global() << "},\n"
     << "  \"faults_compiled_in\": " << (MINIPOP_FAULTS ? "true" : "false")
     << ",\n  \"guard_overhead\": [\n";
  for (std::size_t k = 0; k < overhead.size(); ++k) {
    const auto& o = overhead[k];
    os << "    {\"solver\": \"" << o.solver << "\", \"raw_ms\": " << o.raw_ms
       << ", \"decorated_ms\": " << o.decorated_ms
       << ", \"overhead_pct\": " << o.overhead_pct() << "}"
       << (k + 1 < overhead.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"integrity_overhead_gate_pct\": 2.0,\n"
     << "  \"integrity_overhead\": [\n";
  for (std::size_t k = 0; k < integrity.size(); ++k) {
    const auto& o = integrity[k];
    os << "    {\"solver\": \"" << o.solver
       << "\", \"off_ms\": " << o.raw_ms << ", \"on_ms\": " << o.decorated_ms
       << ", \"measured_overhead_pct\": " << o.overhead_pct()
       << ", \"modeled_overhead_pct\": " << o.modeled << "}"
       << (k + 1 < integrity.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"campaign\": [\n";
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const auto& c = cells[k];
    os << "    {\"site\": \"" << c.site << "\", \"schedule\": \""
       << c.schedule << "\", \"solver\": \"" << c.solver
       << "\", \"trials\": " << c.trials << ", \"recovered\": " << c.recovered
       << ", \"typed_failures\": " << c.typed_fail
       << ", \"silent_wrong\": " << c.silent
       << ", \"recovery_rate\": " << c.recovery_rate()
       << ", \"mean_detect_iters\": " << c.mean_detect_iters
       << ", \"actions\": [";
    for (std::size_t a = 0; a < c.actions.size(); ++a)
      os << "\"" << c.actions[a] << "\""
         << (a + 1 < c.actions.size() ? ", " : "");
    os << "]}" << (k + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flush();
  return os.good();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_resilience.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--smoke")
      smoke = true;
    else
      json_path = arg;
  }
  std::printf("== bench resilience: guard + integrity overhead%s ==\n\n",
              smoke ? " (smoke)" : " + fault campaign");

  // One problem for everything: big enough that a solve does real work,
  // small enough that the ~50-cell campaign stays under a minute.
  Problem p = make_problem(96, 72, 24, /*nranks=*/1);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);

  // --- guard overhead (serial, fault-free) ---
  std::vector<OverheadResult> overhead;
  for (const std::string kind : {"cg", "pcsi"}) {
    overhead.push_back(measure_overhead(p, kind, bounds));
    const auto& o = overhead.back();
    std::printf("%-10s raw %8.3f ms  decorated %8.3f ms  overhead %+.2f%%\n",
                o.solver.c_str(), o.raw_ms, o.decorated_ms,
                o.overhead_pct());
  }

  // --- integrity overhead (serial, fault-free): modeled gate < 2% ---
  constexpr double kIntegrityGatePct = 2.0;
  std::vector<OverheadResult> integrity;
  bool gate_ok = true;
  std::printf("\n");
  for (const std::string kind : {"cg", "pcsi"}) {
    integrity.push_back(measure_integrity_overhead(p, kind, bounds));
    const auto& o = integrity.back();
    const bool ok = o.modeled < kIntegrityGatePct;
    gate_ok = gate_ok && ok;
    std::printf(
        "%-10s integrity off %8.3f ms  on %8.3f ms  measured %+.2f%%  "
        "modeled %+.2f%%  %s\n",
        o.solver.c_str(), o.raw_ms, o.decorated_ms, o.overhead_pct(),
        o.modeled, ok ? "ok" : "OVER BUDGET");
  }

  std::vector<CampaignCell> cells;
  int silent_total = 0;
#if MINIPOP_FAULTS
  if (!smoke) {
    // --- fault campaign (4-rank team) ---
    Problem pc = make_problem(48, 36, 12, /*nranks=*/4);
    const ms::EigenBounds cb = lanczos_bounds_serial(pc);
    const SolveRun clean_cg = run_with(pc, 4, decorated("cg", cb));
    const SolveRun clean_pcsi = run_with(pc, 4, decorated("pcsi", cb));
    std::printf("\n%-22s %-10s %-6s %7s %9s %7s %8s\n", "site", "schedule",
                "solver", "trials", "recovered", "typed", "detect");
    cells = run_campaign(pc, cb, clean_cg.x, clean_pcsi.x);
    for (const auto& c : cells) {
      std::printf("%-22s %-10s %-6s %7d %9d %7d %8.1f\n", c.site.c_str(),
                  c.schedule.c_str(), c.solver.c_str(), c.trials,
                  c.recovered, c.typed_fail, c.mean_detect_iters);
      silent_total += c.silent;
    }
    std::printf("\nsilent wrong answers across the matrix: %d (must be 0)\n",
                silent_total);
  }
#else
  if (!smoke)
    std::printf(
        "\nfault campaign skipped: rebuild with -DMINIPOP_FAULTS=ON\n");
#endif

  if (!write_json(json_path, p, overhead, integrity, cells)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: modeled integrity-on overhead exceeds %.1f%% budget\n",
                 kIntegrityGatePct);
    return 1;
  }
  if (silent_total != 0) {
    std::fprintf(stderr,
                 "FAIL: %d silent wrong answers in the fault campaign\n",
                 silent_total);
    return 1;
  }
  return 0;
}
