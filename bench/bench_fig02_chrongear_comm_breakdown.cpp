// Paper Fig. 2: time per simulated day spent in the global reduction and
// in halo updating inside the ChronGear solver (0.1 degree, Yellowstone).
// Reduction time dips until ~1,200 cores (the local masking shrinks) and
// then grows (tree depth + noise); halo time decreases towards its
// 4-message latency floor.
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto grid = perf::pop_0p1deg_case();
  perf::PopTimingModel model(perf::yellowstone_profile(), grid,
                             perf::paper_iteration_model(grid));

  bench::print_header("Figure 2",
                      "ChronGear global-reduction vs halo time per "
                      "simulated day (0.1deg, Yellowstone)");

  util::Table t({"cores", "reduction[s]", "halo[s]", "computation[s]"});
  for (int p : {470, 752, 1200, 1880, 2700, 4220, 5400, 8440, 16875}) {
    auto c = model.barotropic_per_day(perf::Config::kCgDiag, p);
    t.row().add_int(p).add(c.reduction, 2).add(c.halo, 2).add(
        c.computation, 2);
  }
  t.print(std::cout);
  std::cout << "\nShape check: reduction has an interior minimum near "
               "~1,200 cores and dominates\nbeyond a couple thousand "
               "cores (paper Sec. 2.2).\n";
  (void)cli;
  return 0;
}
