// Paper Fig. 3: effect of the number of Lanczos steps on the resulting
// P-CSI iteration count (1-degree POP). Too few steps give a bad
// eigenvalue interval and poor (or no) convergence; only a handful of
// steps are needed for near-optimal Chebyshev behaviour, which is why
// the cheap epsilon = 0.15 stopping rule works.
//
// This is a LIVE experiment: real Lanczos runs + real P-CSI solves on a
// scaled synthetic 1-degree grid (use --scale=1 for the full 320x384).
#include <iostream>

#include "bench_common.hpp"
#include "src/solver/lanczos.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.25);
  const int max_steps = cli.get_int("max-steps", 16);
  auto c = bench::make_live_case("1deg", scale, 12);

  bench::print_header(
      "Figure 3", "Lanczos steps vs resulting P-CSI iterations (live, "
                  "1deg grid at scale " +
                      std::to_string(scale) + ")");

  comm::SerialComm comm;
  solver::DistOperator op(*c.stencil, *c.decomp, 0);
  solver::DiagonalPreconditioner precond(op);

  // Reference: the paper's adaptive stopping rule (epsilon = 0.15).
  solver::LanczosOptions adaptive;  // rel_tolerance = 0.15
  auto ref = solver::estimate_eigenvalue_bounds(comm, *c.halo, op, precond,
                                                adaptive);

  util::Table t({"lanczos steps", "interval [nu, mu]", "pcsi iterations",
                 "converged"});
  for (int steps = 1; steps <= max_steps; ++steps) {
    solver::LanczosOptions lopt;
    lopt.max_steps = steps;
    lopt.rel_tolerance = -1.0;  // run exactly `steps`
    auto lz = solver::estimate_eigenvalue_bounds(comm, *c.halo, op,
                                                 precond, lopt);

    solver::SolverOptions sopt;
    sopt.rel_tolerance = 1e-12;
    sopt.max_iterations = 5000;
    solver::PcsiSolver pcsi(lz.bounds, sopt);
    comm::DistField b(*c.decomp, 0), x(*c.decomp, 0);
    b.load_global(c.rhs_global);
    auto stats = pcsi.solve(comm, *c.halo, op, precond, b, x);

    std::ostringstream interval;
    interval.precision(3);
    interval << "[" << lz.bounds.nu << ", " << lz.bounds.mu << "]";
    t.row()
        .add_int(steps)
        .add(interval.str())
        .add_int(stats.iterations)
        .add(stats.converged ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "\nAdaptive rule (epsilon = 0.15) stopped after "
            << ref.steps
            << " steps — enough for near-optimal convergence "
               "(paper Fig. 3 and Sec. 3).\n";
  return 0;
}
