// Ablation: the simplified EVP variant (paper §4.3) — dropping the
// E/W/N/S stencil coefficients inside the preconditioner tile solve.
// The paper reports this halves the preconditioning cost "without any
// significant impact on the convergence rate". We verify both halves of
// that claim, and also show the caveat our implementation guards
// against: on strongly anisotropic tiles the edge coefficients are NOT
// small and the drop must be (and is) disabled per tile.
#include <iostream>

#include "bench_common.hpp"
#include "src/evp/block_evp_preconditioner.hpp"
#include "src/model/ocean_model.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/util/rng.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.2);

  bench::print_header("Ablation: simplified EVP",
                      "full vs simplified (corner-only) EVP marching "
                      "(live 1deg-scaled grid)");

  auto c = bench::make_live_case("1deg", scale, 12);

  util::Table t({"variant", "chrongear iters", "pcsi iters",
                 "precond ops/pt/iter"});
  for (bool simplified : {false, true}) {
    double iters[2] = {0, 0};
    for (auto cfg : {perf::Config::kCgEvp, perf::Config::kPcsiEvp}) {
      auto scfg = bench::config_for(cfg, 1e-12, /*evp_max_tile=*/0);
      scfg.evp.simplified = simplified;
      auto res = bench::measure_iterations(c, scfg);
      iters[perf::is_pcsi(cfg) ? 1 : 0] = res.mean_iterations;
    }
    t.row()
        .add(simplified ? "simplified (5-coeff)" : "full (9-coeff)")
        .add(iters[0], 1)
        .add(iters[1], 1)
        .add(simplified ? "~14 (paper Eq. 6)" : "~22 (paper Sec. 4.2)");
  }
  t.print(std::cout);

  // The anisotropy guard: report the fraction of tiles that would refuse
  // the simplified drop on each production-like grid.
  bench::print_header("Ablation: simplified EVP",
                      "edge/corner coefficient ratio per grid (drop is "
                      "only safe when small)");
  util::Table t2({"grid", "max |edge| / max |corner|", "drop safe?"});
  for (const auto& [name, s] :
       {std::pair<std::string, double>{"1deg", 0.2},
        std::pair<std::string, double>{"0.1deg", 0.04}}) {
    auto lc = bench::make_live_case(name, s, 12);
    const double ratio = lc.stencil->edge_to_corner_ratio();
    std::ostringstream os;
    os.precision(2);
    os << ratio;
    t2.row().add(name).add(os.str()).add(
        ratio < 0.3 ? "yes" : "per-tile (disabled on stretched tiles)");
  }
  t2.print(std::cout);

  // On a near-isotropic grid (like POP's production 0.1 degree, whose
  // spacing ratio is close to one — paper Sec. 4.3) the drop genuinely
  // engages; verify the convergence claim there.
  bench::print_header("Ablation: simplified EVP",
                      "near-isotropic grid: the drop engages and "
                      "convergence is unaffected");
  grid::GridSpec spec;
  spec.kind = grid::GridKind::kUniform;
  spec.nx = 72;
  spec.ny = 60;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.1e4;
  grid::CurvilinearGrid g(spec);
  auto depth = grid::bowl_bathymetry(g, 4500.0);
  const double dt = model::recommended_barotropic_dt(g);
  const double phi = 1.0 / (9.806 * 0.36 * dt * dt);
  grid::NinePointStencil st(g, depth, phi);
  grid::Decomposition d(72, 60, false, st.mask(), 12, 12, 1);
  comm::HaloExchanger hx(d);
  comm::SerialComm comm;
  solver::DistOperator op(st, d, 0);
  util::Table t3({"variant", "tiles simplified", "chrongear iterations"});
  for (bool simplified : {false, true}) {
    evp::BlockEvpOptions eopt;
    eopt.max_tile = 0;
    eopt.simplified = simplified;
    evp::BlockEvpPreconditioner m(op, g, depth, eopt);
    solver::SolverOptions sopt;
    sopt.rel_tolerance = 1e-12;
    solver::ChronGearSolver solver(sopt);
    comm::DistField b(d, 0), x(d, 0);
    util::Xoshiro256 rng(5);
    for (int lb = 0; lb < b.num_local_blocks(); ++lb) {
      const auto& info = b.info(lb);
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i)
          b.at(lb, i, j) =
              op.block_mask(lb)(i, j) ? rng.uniform(-1, 1) : 0.0;
    }
    auto stats = solver.solve(comm, hx, op, m, b, x);
    t3.row()
        .add(simplified ? "simplified (5-coeff)" : "full (9-coeff)")
        .add(std::to_string(m.simplified_tiles()) + " / " +
             std::to_string(m.num_tiles()))
        .add(stats.converged ? std::to_string(stats.iterations)
                             : "no convergence");
  }
  t3.print(std::cout);
  std::cout << "\nShape check: iteration counts barely move between "
               "variants while the\npreconditioning cost drops from ~22 "
               "to ~14 ops/point (paper Sec. 4.3). On the\nstrongly-"
               "stretched synthetic grids above, the per-tile guard "
               "disables the drop\n(our grids are more anisotropic than "
               "POP's production grids).\n";
  return 0;
}
