// Paper Fig. 7: execution time of the barotropic mode in 1-degree POP
// for one simulated day, across the four solver/preconditioner
// configurations and core counts up to 768. Anchors: ChronGear+diag
// 0.58 s and P-CSI+EVP 0.37 s at 768 cores (1.6x).
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto grid = perf::pop_1deg_case();
  perf::PopTimingModel model(perf::yellowstone_profile(), grid,
                             perf::paper_iteration_model(grid));

  bench::print_header("Figure 7",
                      "barotropic time per simulated day, 1deg POP, "
                      "Yellowstone [seconds]");

  util::Table t({"cores", "chrongear+diag", "chrongear+evp", "pcsi+diag",
                 "pcsi+evp"});
  for (int p : {16, 48, 96, 192, 384, 768}) {
    auto& row = t.row();
    row.add_int(p);
    for (auto c : perf::kAllConfigs)
      row.add(model.barotropic_per_day(c, p).total(), 3);
  }
  t.print(std::cout);
  const double cg =
      model.barotropic_per_day(perf::Config::kCgDiag, 768).total();
  const double pe =
      model.barotropic_per_day(perf::Config::kPcsiEvp, 768).total();
  std::cout << "\nAt 768 cores: chrongear+diag " << cg << " s vs pcsi+evp "
            << pe << " s -> speedup " << cg / pe
            << "x (paper: 0.58 -> 0.37, 1.6x).\n";
  (void)cli;
  return 0;
}
