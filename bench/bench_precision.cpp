// Mixed-precision benchmark harness: quantifies what the fp32 storage
// path buys and proves it costs no accuracy. Four experiments, one JSON:
//
//   1. Per-kernel fp32-vs-fp64 rates for the solver hot loops (9-point
//      matvec, fused residual) and the EVP marching sweep, reported as
//      GB/s-EQUIVALENT: both precisions are charged the fp64 byte
//      convention, so the fp32/fp64 ratio IS the per-sweep speedup the
//      halved storage buys (2.0x = perfectly bandwidth-bound).
//   2. Halo bytes on the wire per exchange, fp64 vs fp32 fields, on a
//      4-rank decomposition (the static per-exchange payload of the
//      split-phase engine; fp32 halos are exactly half).
//   3. End-to-end barotropic solves (P-CSI + block-EVP) per precision
//      mode: fp64 and mixed at the production 1e-10 tolerance, fp32 and
//      fp64 at the loose 1e-5 tolerance where a pure-float solve is
//      viable.
//   4. A Figure-12-style tolerance-vs-RMSE sweep on two model grids:
//      monthly temperature RMSE against a strict fp64 reference, for
//      fp64 and mixed at each tolerance. Mixed "matches fp64" when its
//      RMSE stays below the tolerance-equivalent error — the RMSE an
//      honestly-converged fp64 solve shows at the loosest tested
//      tolerance on that grid.
//
// Run from the repo root so BENCH_precision.json lands there:
//
//   ./build/bench/bench_precision [output.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/evp/block_evp_preconditioner.hpp"
#include "src/model/ocean_model.hpp"
#include "src/solver/dist_operator.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/kernels.hpp"
#include "src/stats/ensemble.hpp"
#include "src/stats/statistics.hpp"

using namespace minipop;
namespace mk = solver::kernels;

namespace {

/// Best-of-repeats timing (same scheme as bench_kernels): calibrate the
/// batch to ~20 ms, report the fastest batch mean per call, in seconds.
template <typename F>
double time_best(F&& fn, int repeats = 5) {
  using clock = std::chrono::steady_clock;
  auto seconds_for = [&](int reps) {
    const auto t0 = clock::now();
    for (int k = 0; k < reps; ++k) fn();
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  int reps = 1;
  double t = seconds_for(reps);
  while (t < 0.02 && reps < (1 << 20)) {
    reps *= 2;
    t = seconds_for(reps);
  }
  double best = t / reps;
  for (int k = 1; k < repeats; ++k)
    best = std::min(best, seconds_for(reps) / reps);
  return best;
}

struct KernelRow {
  std::string name;
  std::string precision;   ///< "fp64" | "fp32"
  double seconds = 0;      ///< per call
  double bytes_per_point;  ///< fp64-byte convention for BOTH precisions
  double points = 0;
  double gb_equiv_per_s() const {
    return points * bytes_per_point / seconds / 1e9;
  }
};

struct SolveRow {
  std::string mode;  ///< "fp64" | "fp32" | "mixed"
  double tolerance = 0;
  int iterations = 0;
  int refine_sweeps = 0;
  double seconds = 0;
  double rel_residual = 0;
  bool converged = false;
};

struct RmseRow {
  std::string grid;
  int nx = 0, ny = 0;
  double tolerance = 0;
  double rmse_fp64 = 0;   ///< fp64 @ tolerance vs strict fp64 reference
  double rmse_mixed = 0;  ///< mixed @ tolerance vs the same reference
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_precision.json";
  bench::print_header("precision",
                      "fp32 storage path: kernel/EVP/halo gains and "
                      "mixed-vs-fp64 accuracy");

  // ------------------------------------------------------------------
  // 1. Kernel rates: the full 1-degree grid as one masked block.
  // ------------------------------------------------------------------
  bench::LiveCase c = bench::make_live_case("1deg", 1.0, 384);
  comm::SerialComm comm;
  solver::DistOperator op(*c.stencil, *c.decomp, 0);
  const int nx = c.grid->nx(), ny = c.grid->ny();
  const double points = static_cast<double>(nx) * ny;
  std::printf("grid %dx%d, one block, %.0f%% ocean\n\n", nx, ny,
              100.0 * op.local_ocean_cells() / points);

  comm::DistField x(*c.decomp, 0), y(*c.decomp, 0), b(*c.decomp, 0),
      r(*c.decomp, 0);
  x.load_global(c.rhs_global);
  b.load_global(c.rhs_global);
  c.halo->exchange(comm, x);
  comm::DistField32 x32(*c.decomp, 0), y32(*c.decomp, 0),
      b32(*c.decomp, 0), r32(*c.decomp, 0);
  solver::demote(x, x32);
  solver::demote(b, b32);
  c.halo->exchange(comm, x32);

  auto stencil_of = [&](auto tag) {
    using T = decltype(tag);
    auto coeff = [&](grid::Dir d) -> const T* {
      if constexpr (std::is_same_v<T, float>)
        return op.block_coeff32(0, d).data();
      else
        return op.block_coeff(0, d).data();
    };
    return mk::Stencil9T<T>{coeff(grid::Dir::kCenter),
                            coeff(grid::Dir::kEast),
                            coeff(grid::Dir::kWest),
                            coeff(grid::Dir::kNorth),
                            coeff(grid::Dir::kSouth),
                            coeff(grid::Dir::kNorthEast),
                            coeff(grid::Dir::kNorthWest),
                            coeff(grid::Dir::kSouthEast),
                            coeff(grid::Dir::kSouthWest),
                            op.block_coeff(0, grid::Dir::kCenter).nx()};
  };
  const auto st64 = stencil_of(double{});
  const auto st32 = stencil_of(float{});
  const auto& info = x.info(0);

  std::vector<KernelRow> kernels;
  auto add = [&](const std::string& name, const std::string& prec,
                 double bytes_per_point, double pts, double seconds) {
    kernels.push_back({name, prec, seconds, bytes_per_point, pts});
    std::printf("%-18s %-5s %8.3f ns/pt %8.2f GB/s-equiv\n", name.c_str(),
                prec.c_str(), seconds / pts * 1e9,
                kernels.back().gb_equiv_per_s());
  };

  add("apply9", "fp64", 88, points, time_best([&] {
        mk::apply9(st64, info.nx, info.ny, x.interior(0), x.stride(0),
                   y.interior(0), y.stride(0));
      }));
  add("apply9", "fp32", 88, points, time_best([&] {
        mk::apply9(st32, info.nx, info.ny, x32.interior(0), x32.stride(0),
                   y32.interior(0), y32.stride(0));
      }));
  add("residual9", "fp64", 96, points, time_best([&] {
        mk::residual9(st64, info.nx, info.ny, b.interior(0), b.stride(0),
                      x.interior(0), x.stride(0), r.interior(0),
                      r.stride(0));
      }));
  add("residual9", "fp32", 96, points, time_best([&] {
        mk::residual9(st32, info.nx, info.ny, b32.interior(0),
                      b32.stride(0), x32.interior(0), x32.stride(0),
                      r32.interior(0), r32.stride(0));
      }));

  // EVP marching sweep: the Eq. 4 recurrence on a deep-ocean 12x12 tile
  // (the production fp64 tile size) of the regularized operator. The
  // march is a serial dependent chain; the fp64 critical path carries
  // the NE-pivot division, which the fp32 march replaces with a
  // precomputed-reciprocal multiply — this kernel is where the fp32 EVP
  // speedup lives. fp32 validation is disabled here on purpose: a 12x12
  // fp32 march is timing-representative but not accuracy-representative
  // (production fp32 tiles are 6x6), and this row times arithmetic only.
  // Traffic convention: 9 coefficients + y read + x write per point.
  {
    const util::Field reg_depth = evp::regularize_land_depth(c.depth, 0.02);
    const grid::NinePointStencil reg_stencil(*c.grid, reg_depth, op.phi());
    std::array<util::Field, grid::kNumDirs> coeff;
    for (int d = 0; d < grid::kNumDirs; ++d)
      coeff[d] = reg_stencil.coeff(static_cast<grid::Dir>(d));
    const int tn = 12;
    evp::EvpTileSolver tile(coeff, 160, 190, tn, tn);
    tile.enable_fp32(/*validate_accuracy=*/0.0);
    util::Field ty(tn, tn), tx(tn, tn, 0.0);
    for (int j = 0; j < tn; ++j)
      for (int i = 0; i < tn; ++i) ty(i, j) = ((i * 5 + j * 3) % 7) - 3.0;
    util::Array2D<float> ty32(tn, tn), tx32(tn, tn, 0.0f);
    for (int j = 0; j < tn; ++j)
      for (int i = 0; i < tn; ++i)
        ty32(i, j) = static_cast<float>(ty(i, j));
    const double tile_points = static_cast<double>(tn - 1) * (tn - 1);
    add("evp_sweep", "fp64", 88, tile_points,
        time_best([&] { tile.march_sweep(ty, tx); }));
    add("evp_sweep", "fp32", 88, tile_points,
        time_best([&] { tile.march_sweep32(ty32, tx32); }));
  }

  // Full block-EVP preconditioner application (gather + marches + LU
  // guess correction + masked scatter) at equal 6x6 tiles for both
  // precisions. The O(k) correction and tile bookkeeping are shared
  // double-precision work, so the end-to-end ratio is necessarily
  // smaller than the marching-sweep ratio above. Traffic convention:
  // two marches of 11 elements/point.
  {
    evp::BlockEvpOptions eopt;
    eopt.max_tile = 6;
    eopt.max_tile32 = 6;
    evp::BlockEvpPreconditioner evp(op, *c.grid, c.depth, eopt);
    evp.apply(comm, b32, r32);  // builds the fp32 tiles outside timing
    const double evp_bytes = 2 * 11 * 8;
    add("evp_apply", "fp64", evp_bytes, points,
        time_best([&] { evp.apply(comm, b, r); }));
    add("evp_apply", "fp32", evp_bytes, points,
        time_best([&] { evp.apply(comm, b32, r32); }));
  }

  auto speedup = [&](const std::string& name) {
    double s64 = 0, s32 = 0;
    for (const auto& k : kernels) {
      if (k.name != name) continue;
      (k.precision == "fp64" ? s64 : s32) = k.seconds;
    }
    return s64 / s32;
  };
  const double sp_apply = speedup("apply9");
  const double sp_residual = speedup("residual9");
  const double sp_evp = speedup("evp_sweep");
  const double sp_evp_apply = speedup("evp_apply");
  std::printf(
      "\nfp32 speedup (GB/s-equivalent ratio): apply9 %.2fx, "
      "residual9 %.2fx, evp_sweep %.2fx, evp_apply %.2fx\n",
      sp_apply, sp_residual, sp_evp, sp_evp_apply);

  // ------------------------------------------------------------------
  // 2. Halo payload on the wire: 4-rank decomposition of the same grid,
  //    rank 0's per-exchange remote send bytes.
  // ------------------------------------------------------------------
  std::uint64_t halo_bytes64 = 0, halo_bytes32 = 0;
  {
    auto mask = c.stencil->mask();
    grid::Decomposition d4(nx, ny, c.grid->periodic_x(), mask, 48, 48, 4);
    comm::HaloExchanger halo4(d4);
    comm::DistField f64(d4, 0);
    comm::DistField32 f32(d4, 0);
    halo_bytes64 = halo4.bytes_sent_per_exchange(f64);
    halo_bytes32 = halo4.bytes_sent_per_exchange(f32);
    std::printf(
        "\nhalo payload per exchange (rank 0 of 4, 48x48 blocks): "
        "fp64 %llu B, fp32 %llu B (%.2fx smaller)\n",
        static_cast<unsigned long long>(halo_bytes64),
        static_cast<unsigned long long>(halo_bytes32),
        static_cast<double>(halo_bytes64) / halo_bytes32);
  }

  // ------------------------------------------------------------------
  // 3. End-to-end solves per precision mode (P-CSI + block-EVP).
  // ------------------------------------------------------------------
  std::vector<SolveRow> solves;
  auto run_mode = [&](const std::string& mode, solver::Precision prec,
                      double tol) {
    solver::SolverConfig cfg;
    cfg.solver = solver::SolverKind::kPcsi;
    cfg.preconditioner = solver::PreconditionerKind::kBlockEvp;
    cfg.options.rel_tolerance = tol;
    cfg.options.precision = prec;
    solver::BarotropicSolver bs(comm, *c.halo, *c.grid, c.depth,
                                *c.stencil, *c.decomp, cfg);
    solver::SolveStats stats;
    comm::DistField xs(*c.decomp, 0);
    const double secs = time_best(
        [&] {
          xs.fill(0.0);
          stats = bs.solve(comm, b, xs);
        },
        3);
    solves.push_back({mode, tol, stats.iterations, stats.refine_sweeps,
                      secs, stats.relative_residual, stats.converged});
    std::printf("%-6s tol %.0e: %5d iters, %2d sweeps, %8.2f ms/solve, "
                "rel=%.3e%s\n",
                mode.c_str(), tol, stats.iterations, stats.refine_sweeps,
                secs * 1e3, stats.relative_residual,
                stats.converged ? "" : "  NOT CONVERGED");
  };
  std::printf("\nend-to-end pcsi+block-evp solves (%dx%d):\n", nx, ny);
  run_mode("fp64", solver::Precision::kFp64, 1e-10);
  run_mode("mixed", solver::Precision::kMixed, 1e-10);
  run_mode("fp64", solver::Precision::kFp64, 1e-5);
  run_mode("fp32", solver::Precision::kFp32, 1e-5);

  // ------------------------------------------------------------------
  // 4. Tolerance-vs-RMSE sweep (Figure-12 style) on two grids.
  // ------------------------------------------------------------------
  const std::vector<double> tolerances = {1e-10, 1e-12};
  const double reference_tol = 1e-15;
  const int months = 2;
  std::vector<RmseRow> rmse_rows;
  bool mixed_matches = true;
  for (const double scale : {0.06, 0.08}) {
    stats::EnsembleConfig base;
    base.model.grid = grid::pop_1deg_spec(scale);
    base.model.nz = 3;
    base.model.block_size = 12;
    base.model.nranks = 1;
    base.months = months;
    const std::string gname = std::to_string(base.model.grid.nx) + "x" +
                              std::to_string(base.model.grid.ny);
    std::printf("\ntolerance-vs-RMSE sweep, grid %s, month %d vs fp64 "
                "tol %.0e reference:\n",
                gname.c_str(), months, reference_tol);

    auto run_with = [&](double tol, solver::Precision prec) {
      auto cfg = base;
      cfg.model.solver.options.rel_tolerance = tol;
      cfg.model.solver.options.precision = prec;
      return stats::run_member(cfg, /*member=*/-1);
    };
    const auto reference =
        run_with(reference_tol, solver::Precision::kFp64);
    comm::SerialComm probe_comm;
    model::OceanModel probe(probe_comm, base.model);
    const auto mask = grid::ocean_mask(probe.depth());

    double loosest_fp64_rmse = 0;
    for (const double tol : tolerances) {
      RmseRow row;
      row.grid = gname;
      row.nx = base.model.grid.nx;
      row.ny = base.model.grid.ny;
      row.tolerance = tol;
      row.rmse_fp64 =
          stats::rmse(run_with(tol, solver::Precision::kFp64).back(),
                      reference.back(), mask);
      row.rmse_mixed =
          stats::rmse(run_with(tol, solver::Precision::kMixed).back(),
                      reference.back(), mask);
      if (tol == tolerances.front()) loosest_fp64_rmse = row.rmse_fp64;
      rmse_rows.push_back(row);
      std::printf("  tol %.0e: rmse fp64 %.3e, mixed %.3e\n", tol,
                  row.rmse_fp64, row.rmse_mixed);
    }
    // The tolerance-equivalent error bar: an honestly-converged fp64
    // solve at the loosest tested tolerance. Mixed must stay below it at
    // EVERY tested tolerance (it converges on the true fp64 residual, so
    // it should track the fp64 curve, orders below this bar at the
    // tighter tolerances).
    for (const auto& row : rmse_rows)
      if (row.grid == gname && row.rmse_mixed > loosest_fp64_rmse * 3.0)
        mixed_matches = false;
  }
  std::printf("\nmixed matches fp64 (RMSE below the tolerance-equivalent "
              "error on every grid): %s\n",
              mixed_matches ? "yes" : "NO");

  // ------------------------------------------------------------------
  // JSON snapshot.
  // ------------------------------------------------------------------
  std::ofstream os(json_path);
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"precision\",\n"
     << "  \"grid\": {\"nx\": " << nx << ", \"ny\": " << ny << "},\n"
     << "  \"kernels\": [\n";
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const auto& kr = kernels[k];
    os << "    {\"name\": \"" << kr.name << "\", \"precision\": \""
       << kr.precision << "\", \"ns_per_point\": "
       << kr.seconds / kr.points * 1e9 << ", \"gb_equiv_per_s\": "
       << kr.gb_equiv_per_s() << "}"
       << (k + 1 < kernels.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"fp32_speedup\": {\"apply9\": " << sp_apply
     << ", \"residual9\": " << sp_residual << ", \"evp_sweep\": " << sp_evp
     << ", \"evp_apply\": " << sp_evp_apply << "},\n"
     << "  \"halo_bytes_per_exchange\": {\"fp64\": " << halo_bytes64
     << ", \"fp32\": " << halo_bytes32 << "},\n"
     << "  \"solves\": [\n";
  for (std::size_t k = 0; k < solves.size(); ++k) {
    const auto& s = solves[k];
    os << "    {\"mode\": \"" << s.mode << "\", \"tolerance\": "
       << s.tolerance << ", \"iterations\": " << s.iterations
       << ", \"refine_sweeps\": " << s.refine_sweeps << ", \"seconds\": "
       << s.seconds << ", \"relative_residual\": " << s.rel_residual
       << ", \"converged\": " << (s.converged ? "true" : "false") << "}"
       << (k + 1 < solves.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"tolerance_rmse\": [\n";
  for (std::size_t k = 0; k < rmse_rows.size(); ++k) {
    const auto& t = rmse_rows[k];
    os << "    {\"grid\": \"" << t.grid << "\", \"tolerance\": "
       << t.tolerance << ", \"rmse_fp64\": " << t.rmse_fp64
       << ", \"rmse_mixed\": " << t.rmse_mixed << "}"
       << (k + 1 < rmse_rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"mixed_matches_fp64\": "
     << (mixed_matches ? "true" : "false") << "\n}\n";
  os.flush();
  if (!os.good()) {
    std::fprintf(stderr, "\nerror: could not write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return mixed_matches ? 0 : 1;
}
