// Shared plumbing for the figure/table benchmarks: live solver cases on
// scaled production grids, iteration-count measurement, and consistent
// headers. Every bench prints the paper row/series it reproduces; see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for paper-vs-
// measured numbers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/comm/serial_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/model/config.hpp"
#include "src/perf/pop_timing_model.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace minipop::bench {

/// A fully-assembled standalone elliptic problem on a scaled production
/// grid (serial, one rank owning block-decomposed tiles, like POP at a
/// given block size).
struct LiveCase {
  std::unique_ptr<grid::CurvilinearGrid> grid;
  util::Field depth;
  std::unique_ptr<grid::NinePointStencil> stencil;
  std::unique_ptr<grid::Decomposition> decomp;
  std::unique_ptr<comm::HaloExchanger> halo;
  util::Field rhs_global;
  double dt = 0.0;
};

/// `which` is "1deg" or "0.1deg"; `scale` shrinks the grid (1.0 = paper
/// size). block_size is the process-block edge used for decomposition
/// (and thus for whole-block EVP preconditioning).
LiveCase make_live_case(const std::string& which, double scale,
                        int block_size, std::uint64_t seed = 2015);

/// Measure average iterations for a solver configuration over `solves`
/// consecutive solves with slightly different right-hand sides (as POP's
/// time stepping produces). Returns (mean iterations, setup lanczos
/// steps if any).
struct LiveSolveResult {
  double mean_iterations = 0;
  bool all_converged = true;
  int lanczos_steps = 0;
  std::uint64_t precond_setup_flops = 0;
  comm::CostCounters costs;  ///< accumulated over all solves
};
LiveSolveResult measure_iterations(LiveCase& c,
                                   const solver::SolverConfig& config,
                                   int solves = 3);

/// Solver configuration for one of the paper's four variants.
solver::SolverConfig config_for(perf::Config c, double rel_tolerance,
                                int evp_max_tile = 0);

/// Standard bench banner.
void print_header(const std::string& experiment, const std::string& what);

}  // namespace minipop::bench
