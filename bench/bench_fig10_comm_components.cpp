// Paper Fig. 10: execution time of the major communication components of
// the barotropic solvers in 0.1-degree POP on Yellowstone — global
// reduction (left) and boundary/halo communication (right) — for all
// four configurations. P-CSI's reductions are ~10x rarer; EVP's fewer
// iterations cut the boundary-update total.
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto grid = perf::pop_0p1deg_case();
  perf::PopTimingModel model(perf::yellowstone_profile(), grid,
                             perf::paper_iteration_model(grid));

  const int ps[] = {470, 1125, 2700, 5400, 10800, 16875};

  bench::print_header("Figure 10 (left)",
                      "global reduction seconds per simulated day");
  util::Table left({"cores", "chrongear+diag", "chrongear+evp",
                    "pcsi+diag", "pcsi+evp"});
  for (int p : ps) {
    auto& row = left.row();
    row.add_int(p);
    for (auto c : perf::kAllConfigs)
      row.add(model.barotropic_per_day(c, p).reduction, 3);
  }
  left.print(std::cout);

  bench::print_header("Figure 10 (right)",
                      "boundary (halo) communication seconds per "
                      "simulated day");
  util::Table right({"cores", "chrongear+diag", "chrongear+evp",
                     "pcsi+diag", "pcsi+evp"});
  for (int p : ps) {
    auto& row = right.row();
    row.add_int(p);
    for (auto c : perf::kAllConfigs)
      row.add(model.barotropic_per_day(c, p).halo, 3);
  }
  right.print(std::cout);

  std::cout << "\nShape check: P-CSI's reduction time is an order of "
               "magnitude below ChronGear's;\nreduction decreases below "
               "~1,200 cores then grows (paper Sec. 5.2); EVP halves the\n"
               "boundary totals via fewer iterations.\n";
  (void)cli;
  return 0;
}
