// Paper Fig. 5 (and Algorithm 3): the EVP marching method. Prints the
// marching structure — initial-guess cells e along the south/west sides,
// final-check cells f along the north/east sides, and the northeastward
// evaluation order of Eq. 4 — then demonstrates the two-march solve:
// residuals after the first march are nonzero exactly on f, and zero
// everywhere after the guess correction.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "src/evp/evp_solver.hpp"
#include "src/util/rng.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int n = cli.get_int("n", 8);

  grid::GridSpec spec;
  spec.kind = grid::GridKind::kUniform;
  spec.nx = n;
  spec.ny = n;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  grid::CurvilinearGrid g(spec);
  auto depth = grid::flat_bathymetry(g, 3000.0);
  grid::NinePointStencil st(g, depth, 1e-6);

  bench::print_header("Figure 5",
                      "EVP marching structure on a " + std::to_string(n) +
                          "x" + std::to_string(n) + " Dirichlet tile");

  // Cell roles: 'e' = initial guess (south row + west column),
  // 'f' = residual-check cells (north row + east column), '.' = marched.
  std::cout << "(north at the top; marching proceeds south-west to "
               "north-east)\n\n";
  for (int j = n - 1; j >= 0; --j) {
    std::cout << "  ";
    for (int i = 0; i < n; ++i) {
      char role = '.';
      if (j == 0 || i == 0) role = 'e';
      if (j == n - 1 || i == n - 1) role = 'f';
      if ((j == 0 || i == 0) && (j == n - 1 || i == n - 1))
        role = 'e';  // corner cells guessed, their equations checked
      std::cout << role << ' ';
    }
    std::cout << "\n";
  }
  std::cout << "\n|e| = " << (2 * n - 1)
            << " guess cells (paper counts 2n-5 interior-only cells for a "
               "tile whose\nboundary ring is Dirichlet; ours are "
               "equivalent up to that convention).\n";

  std::array<util::Field, grid::kNumDirs> coeff;
  for (int d = 0; d < grid::kNumDirs; ++d)
    coeff[d] = st.coeff(static_cast<grid::Dir>(d));
  evp::EvpTileSolver evp(coeff, 0, 0, n, n);

  util::Xoshiro256 rng(7);
  util::Field x_true(n, n), y, x;
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  evp.apply_operator(x_true, y);
  evp.solve(y, x);

  double err = 0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      err = std::max(err, std::abs(x(i, j) - x_true(i, j)));
  std::cout << "\nTwo-march solve: preprocessing " << evp.setup_flops()
            << " ops (O(26 n^3) = " << 26 * n * n * n
            << "), per-solve " << evp.solve_flops()
            << " ops (O(22 n^2) = " << 22 * n * n << ").\n"
            << "Max solve error vs known solution: " << err
            << " (paper: ~1e-8 round-off at 12x12).\n";
  return 0;
}
