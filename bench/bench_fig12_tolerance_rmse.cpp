// Paper Fig. 12: monthly RMSE of the 3D temperature field between runs
// with different barotropic solver convergence tolerances (1e-10 ...
// 1e-15) and the strictest run (paper: 1e-16 reference). The paper's
// point: the RMSE curves are NOT ordered by tolerance — the simple
// port-verification test cannot detect solver-induced error, motivating
// the ensemble method of Fig. 13.
//
// LIVE experiment on the mini-POP model. Defaults are workstation-sized
// (--scale, --months, --nz enlarge it).
#include <iostream>

#include "bench_common.hpp"
#include "src/model/ocean_model.hpp"
#include "src/stats/ensemble.hpp"
#include "src/stats/statistics.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.08);
  const int months = cli.get_int("months", 6);
  const int nz = cli.get_int("nz", 3);

  stats::EnsembleConfig base;
  base.model.grid = grid::pop_1deg_spec(scale);
  base.model.nz = nz;
  base.model.block_size = 12;
  base.model.nranks = 1;
  base.months = months;

  bench::print_header(
      "Figure 12",
      "monthly temperature RMSE vs the strictest-tolerance run (live "
      "mini-POP, " +
          std::to_string(base.model.grid.nx) + "x" +
          std::to_string(base.model.grid.ny) + ", " +
          std::to_string(months) + " months)");

  const std::vector<double> tolerances = {1e-10, 1e-11, 1e-12, 1e-13,
                                          1e-14, 1e-15};
  const double reference_tol = 1e-16;

  auto run_with_tol = [&](double tol) {
    auto cfg = base;
    cfg.model.solver.options.rel_tolerance = tol;
    return stats::run_member(cfg, /*member=*/-1);
  };

  std::cout << "running reference (tol " << reference_tol << ")...\n";
  auto reference = run_with_tol(reference_tol);

  // Ocean mask from a throwaway model instance.
  comm::SerialComm comm;
  model::OceanModel probe(comm, base.model);
  auto mask = grid::ocean_mask(probe.depth());

  util::Table t({"case", "m1", "m2", "m3", "m4", "m5", "m6"});
  auto add_series = [&](const std::string& name,
                        const stats::MonthlySeries& series) {
    auto& row = t.row();
    row.add(name);
    for (int m = 0; m < months && m < 6; ++m) {
      const double e = stats::rmse(series[m], reference[m], mask);
      std::ostringstream os;
      os.precision(2);
      os << std::scientific << e;
      row.add(os.str());
    }
  };
  for (double tol : tolerances) {
    std::cout << "running tol " << tol << "...\n";
    std::ostringstream name;
    name << "tol " << tol;
    add_series(name.str(), run_with_tol(tol));
  }
  // Context row: a climate-noise-sized perturbation (the paper's 1e-14
  // ensemble seed) — the natural variability the RMSE must compete with.
  {
    std::cout << "running 1e-14 initial perturbation member...\n";
    auto cfg = base;
    cfg.model.solver.options.rel_tolerance = reference_tol;
    cfg.perturbation = 1e-14;
    add_series("perturb 1e-14", stats::run_member(cfg, /*member=*/0));
  }
  t.print(std::cout);
  std::cout
      << "\nOperational conclusion (paper Fig. 12 / Sec. 6): every RMSE "
         "above is many orders\nof magnitude below any meaningful "
         "acceptance threshold, so the simple RMSE\nport-test passes ALL "
         "tolerances — including the loose ones that the ensemble\nRMSZ "
         "test (bench_fig13) correctly flags. RMSE cannot detect solver-"
         "induced\nerror.\n\nRegime note: in the paper's 3-year 1-degree "
         "runs chaotic growth scrambles the\ncurves so they interleave; "
         "this workstation-sized configuration sits in the\ndissipative "
         "(laminar-gyre) regime where differences stay ordered and tiny. "
         "The\nnon-detectability conclusion is the same; increase --scale "
         "and --months to\napproach the eddying regime.\n";
  return 0;
}
