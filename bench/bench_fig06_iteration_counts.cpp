// Paper Fig. 6: average iteration counts of the four solver
// configurations on the 1-degree and 0.1-degree grids. LIVE experiment:
// real solves on scaled synthetic production grids (--scale1 /
// --scale01 control the sizes; --scale01=1 runs the full 3600x2400).
// The paper's headline convergence results to reproduce:
//   * block-EVP cuts iterations to roughly a third for both solvers;
//   * P-CSI needs more iterations than ChronGear;
//   * 0.1 degree needs fewer iterations than 1 degree (aspect ratios
//     closer to one -> smaller condition number, Sec. 4.3);
//   * the EVP preprocessing cost is small (compare with one solve).
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const double scale1 = cli.get_double("scale1", 0.25);
  const double scale01 = cli.get_double("scale01", 0.05);
  const double tol = cli.get_double("tol", 1e-12);
  const int block = cli.get_int("block", 12);

  bench::print_header("Figure 6",
                      "average solver iterations (live solves on scaled "
                      "grids; EVP tile = process block)");

  util::Table t({"grid", "config", "iterations", "vs diag", "lanczos",
                 "evp setup ops / solve ops"});
  for (const auto& [name, scale] :
       {std::pair<std::string, double>{"1deg", scale1},
        std::pair<std::string, double>{"0.1deg", scale01}}) {
    auto c = bench::make_live_case(name, scale, block);
    double diag_iters[2] = {0, 0};  // [chrongear, pcsi]
    for (auto cfg : perf::kAllConfigs) {
      auto scfg = bench::config_for(cfg, tol, /*evp_max_tile=*/0);
      scfg.lanczos.rel_tolerance = 0.15;  // the paper's epsilon
      auto res = bench::measure_iterations(c, scfg);
      const int solver_idx = perf::is_pcsi(cfg) ? 1 : 0;
      if (!perf::is_evp(cfg)) diag_iters[solver_idx] = res.mean_iterations;
      std::string ratio = "-";
      if (perf::is_evp(cfg) && diag_iters[solver_idx] > 0) {
        std::ostringstream os;
        os.precision(2);
        os << res.mean_iterations / diag_iters[solver_idx] << "x";
        ratio = os.str();
      }
      std::string setup = "-";
      if (res.precond_setup_flops > 0) {
        std::ostringstream os;
        os << res.precond_setup_flops << " / "
           << res.costs.flops / 3;  // flops per solve
        setup = os.str();
      }
      t.row()
          .add(name + " (" + std::to_string(c.grid->nx()) + "x" +
               std::to_string(c.grid->ny()) + ")")
          .add(perf::to_string(cfg))
          .add(res.mean_iterations, 1)
          .add(ratio)
          .add(res.lanczos_steps > 0 ? std::to_string(res.lanczos_steps)
                                     : "-")
          .add(setup);
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check (paper Fig. 6): EVP cuts iterations to "
               "roughly a third; P-CSI\nneeds more iterations than "
               "ChronGear; per-resolution counts drop from 1deg to\n"
               "0.1deg; EVP preprocessing costs less than one solve.\n";
  return 0;
}
