// Paper Fig. 9: the Fig. 1 component-fraction plot repeated with the
// new P-CSI + block-EVP solver: the barotropic share stays low (~16% at
// 16,875 cores instead of ~50%).
#include <iostream>

#include "bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto grid = perf::pop_0p1deg_case();
  perf::PopTimingModel model(perf::yellowstone_profile(), grid,
                             perf::paper_iteration_model(grid));

  bench::print_header(
      "Figure 9",
      "component fractions of 0.1deg POP, P-CSI + block-EVP, Yellowstone");

  util::Table t({"cores", "baroclinic", "barotropic", "barotropic(paper)"});
  struct Row {
    int p;
    const char* paper;
  };
  for (auto [p, paper] : {Row{470, ""}, Row{1125, ""}, Row{2700, ""},
                          Row{5400, ""}, Row{10800, ""},
                          Row{16875, "~16%"}}) {
    const double frac =
        model.barotropic_fraction(perf::Config::kPcsiEvp, p);
    t.row().add_int(p).add_pct(1.0 - frac).add_pct(frac).add(paper);
  }
  t.print(std::cout);
  std::cout << "\nShape check: compare with Figure 1 — the solver share "
               "no longer explodes at\nhigh core counts.\n";
  (void)cli;
  return 0;
}
