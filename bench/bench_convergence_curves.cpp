// Extension bench: convergence curves (relative residual vs iteration)
// for the four paper configurations plus pipelined CG, on a live scaled
// 1-degree problem. Not a paper figure, but the behaviour behind
// Fig. 6's averages: CG-family curves dive monotonically; the Chebyshev
// (P-CSI) curve contracts at the fixed asymptotic rate set by the
// eigenvalue interval.
#include <iostream>

#include "bench_common.hpp"
#include "src/solver/pipelined_cg.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto c = bench::make_live_case("1deg", cli.get_double("scale", 0.2), 12);

  bench::print_header("Convergence curves",
                      "relative residual every 10 iterations (live "
                      "1deg-scaled grid, tol 1e-12)");

  struct Series {
    std::string name;
    std::vector<std::pair<int, double>> history;
  };
  std::vector<Series> series;

  comm::SerialComm comm;
  for (const std::string name :
       {"chrongear+diag", "chrongear+evp", "pcsi+diag", "pcsi+evp",
        "pipecg+diag"}) {
    solver::SolverConfig cfg;
    cfg.options.rel_tolerance = 1e-12;
    cfg.options.record_residuals = true;
    cfg.lanczos.rel_tolerance = 0.15;
    if (name.rfind("pcsi", 0) == 0)
      cfg.solver = solver::SolverKind::kPcsi;
    else if (name.rfind("pipecg", 0) == 0)
      cfg.solver = solver::SolverKind::kPipelinedCg;
    else
      cfg.solver = solver::SolverKind::kChronGear;
    cfg.preconditioner = name.find("evp") != std::string::npos
                             ? solver::PreconditionerKind::kBlockEvp
                             : solver::PreconditionerKind::kDiagonal;
    cfg.evp.max_tile = 0;

    solver::BarotropicSolver bs(comm, *c.halo, *c.grid, c.depth,
                                *c.stencil, *c.decomp, cfg);
    comm::DistField b(*c.decomp, 0), x(*c.decomp, 0);
    b.load_global(c.rhs_global);
    auto stats = bs.solve(comm, b, x);
    series.push_back({name, stats.residual_history});
    if (!stats.converged)
      std::cout << "warning: " << name << " did not converge\n";
  }

  std::size_t rows = 0;
  for (const auto& s : series) rows = std::max(rows, s.history.size());
  std::vector<std::string> headers = {"iteration"};
  for (const auto& s : series) headers.push_back(s.name);
  util::Table t(headers);
  for (std::size_t r = 0; r < rows; ++r) {
    auto& row = t.row();
    row.add_int(static_cast<long>((r + 1) * 10));
    for (const auto& s : series) {
      if (r < s.history.size()) {
        std::ostringstream os;
        os.precision(1);
        os << std::scientific << s.history[r].second;
        row.add(os.str());
      } else {
        row.add("(done)");
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check: EVP curves terminate in roughly a third "
               "of the iterations;\nchrongear and pipecg trace the same "
               "Krylov curve; pcsi contracts linearly at\nthe Chebyshev "
               "rate.\n";
  return 0;
}
