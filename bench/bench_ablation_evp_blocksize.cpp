// Ablation: EVP tile size vs numerical stability and preconditioner
// effectiveness. Reproduces the paper's §4.3 claims that (a) marching
// round-off grows with tile size and is ~1e-8 at 12x12 in double
// precision, and (b) larger (stable) tiles give a stronger
// preconditioner (fewer ChronGear iterations), which is why POP uses
// whole process blocks at high core counts.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "src/evp/block_evp_preconditioner.hpp"
#include "src/evp/evp_solver.hpp"
#include "src/linalg/dense.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/util/rng.hpp"

using namespace minipop;

namespace {

/// Direct-solve relative error of an n x n EVP tile (flat-depth tile).
double tile_error(int n) {
  grid::GridSpec spec;
  spec.kind = grid::GridKind::kUniform;
  spec.nx = n;
  spec.ny = n;
  spec.periodic_x = false;
  spec.dx = 1e4;
  spec.dy = 1.15e4;
  grid::CurvilinearGrid g(spec);
  auto depth = grid::flat_bathymetry(g, 3500.0);
  grid::NinePointStencil st(g, depth, 1e-6);
  std::array<util::Field, grid::kNumDirs> coeff;
  for (int d = 0; d < grid::kNumDirs; ++d)
    coeff[d] = st.coeff(static_cast<grid::Dir>(d));
  evp::EvpOptions opt;
  opt.validate_accuracy = -1;  // instability is the subject
  evp::EvpTileSolver evp(coeff, 0, 0, n, n, opt);
  return evp.measured_accuracy();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);

  bench::print_header("Ablation: EVP tile size",
                      "marching round-off vs tile size (paper Sec. 4.3: "
                      "stable to ~1e-8 at 12x12)");
  util::Table t({"tile", "relative solve error"});
  for (int n : {4, 6, 8, 10, 12, 16, 20, 24}) {
    std::ostringstream os;
    os.precision(2);
    os << std::scientific << tile_error(n);
    t.row().add(std::to_string(n) + "x" + std::to_string(n)).add(os.str());
  }
  t.print(std::cout);

  bench::print_header("Ablation: EVP tile size",
                      "preconditioner strength: ChronGear iterations vs "
                      "max tile (live 1deg-scaled grid)");
  auto c = bench::make_live_case("1deg", cli.get_double("scale", 0.2), 12);
  util::Table t2({"max tile", "chrongear iterations"});
  // Diagonal baseline.
  {
    auto cfg = bench::config_for(perf::Config::kCgDiag, 1e-12);
    auto res = bench::measure_iterations(c, cfg);
    t2.row().add("(diagonal)").add(res.mean_iterations, 1);
  }
  for (int tile : {3, 4, 6, 8, 12}) {
    auto cfg = bench::config_for(perf::Config::kCgEvp, 1e-12, tile);
    auto res = bench::measure_iterations(c, cfg);
    t2.row().add_int(tile).add(res.mean_iterations, 1);
  }
  t2.print(std::cout);
  std::cout << "\nShape check: error grows roughly geometrically with "
               "tile size; iteration\ncounts fall as tiles grow (stronger "
               "block preconditioner) — the trade-off that\nfixes 12x12 "
               "as the practical tile size.\n";
  return 0;
}
