# Empty dependencies file for minipop.
# This may be replaced when dependencies are built.
