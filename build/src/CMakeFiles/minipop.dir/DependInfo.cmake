
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/communicator.cpp" "src/CMakeFiles/minipop.dir/comm/communicator.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/comm/communicator.cpp.o.d"
  "/root/repo/src/comm/cost_tracker.cpp" "src/CMakeFiles/minipop.dir/comm/cost_tracker.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/comm/cost_tracker.cpp.o.d"
  "/root/repo/src/comm/dist_field.cpp" "src/CMakeFiles/minipop.dir/comm/dist_field.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/comm/dist_field.cpp.o.d"
  "/root/repo/src/comm/halo.cpp" "src/CMakeFiles/minipop.dir/comm/halo.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/comm/halo.cpp.o.d"
  "/root/repo/src/comm/serial_comm.cpp" "src/CMakeFiles/minipop.dir/comm/serial_comm.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/comm/serial_comm.cpp.o.d"
  "/root/repo/src/comm/thread_comm.cpp" "src/CMakeFiles/minipop.dir/comm/thread_comm.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/comm/thread_comm.cpp.o.d"
  "/root/repo/src/evp/block_evp_preconditioner.cpp" "src/CMakeFiles/minipop.dir/evp/block_evp_preconditioner.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/evp/block_evp_preconditioner.cpp.o.d"
  "/root/repo/src/evp/evp_solver.cpp" "src/CMakeFiles/minipop.dir/evp/evp_solver.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/evp/evp_solver.cpp.o.d"
  "/root/repo/src/grid/bathymetry.cpp" "src/CMakeFiles/minipop.dir/grid/bathymetry.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/grid/bathymetry.cpp.o.d"
  "/root/repo/src/grid/curvilinear_grid.cpp" "src/CMakeFiles/minipop.dir/grid/curvilinear_grid.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/grid/curvilinear_grid.cpp.o.d"
  "/root/repo/src/grid/decomposition.cpp" "src/CMakeFiles/minipop.dir/grid/decomposition.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/grid/decomposition.cpp.o.d"
  "/root/repo/src/grid/hilbert.cpp" "src/CMakeFiles/minipop.dir/grid/hilbert.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/grid/hilbert.cpp.o.d"
  "/root/repo/src/grid/stencil.cpp" "src/CMakeFiles/minipop.dir/grid/stencil.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/grid/stencil.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/CMakeFiles/minipop.dir/linalg/dense.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/linalg/dense.cpp.o.d"
  "/root/repo/src/linalg/tridiag_eigen.cpp" "src/CMakeFiles/minipop.dir/linalg/tridiag_eigen.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/linalg/tridiag_eigen.cpp.o.d"
  "/root/repo/src/model/barotropic_mode.cpp" "src/CMakeFiles/minipop.dir/model/barotropic_mode.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/model/barotropic_mode.cpp.o.d"
  "/root/repo/src/model/diagnostics.cpp" "src/CMakeFiles/minipop.dir/model/diagnostics.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/model/diagnostics.cpp.o.d"
  "/root/repo/src/model/forcing.cpp" "src/CMakeFiles/minipop.dir/model/forcing.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/model/forcing.cpp.o.d"
  "/root/repo/src/model/geometry.cpp" "src/CMakeFiles/minipop.dir/model/geometry.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/model/geometry.cpp.o.d"
  "/root/repo/src/model/ocean_model.cpp" "src/CMakeFiles/minipop.dir/model/ocean_model.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/model/ocean_model.cpp.o.d"
  "/root/repo/src/model/tracer.cpp" "src/CMakeFiles/minipop.dir/model/tracer.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/model/tracer.cpp.o.d"
  "/root/repo/src/perf/cost_equations.cpp" "src/CMakeFiles/minipop.dir/perf/cost_equations.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/perf/cost_equations.cpp.o.d"
  "/root/repo/src/perf/machine.cpp" "src/CMakeFiles/minipop.dir/perf/machine.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/perf/machine.cpp.o.d"
  "/root/repo/src/perf/pop_timing_model.cpp" "src/CMakeFiles/minipop.dir/perf/pop_timing_model.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/perf/pop_timing_model.cpp.o.d"
  "/root/repo/src/solver/chron_gear.cpp" "src/CMakeFiles/minipop.dir/solver/chron_gear.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/solver/chron_gear.cpp.o.d"
  "/root/repo/src/solver/dist_operator.cpp" "src/CMakeFiles/minipop.dir/solver/dist_operator.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/solver/dist_operator.cpp.o.d"
  "/root/repo/src/solver/field_ops.cpp" "src/CMakeFiles/minipop.dir/solver/field_ops.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/solver/field_ops.cpp.o.d"
  "/root/repo/src/solver/lanczos.cpp" "src/CMakeFiles/minipop.dir/solver/lanczos.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/solver/lanczos.cpp.o.d"
  "/root/repo/src/solver/pcg.cpp" "src/CMakeFiles/minipop.dir/solver/pcg.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/solver/pcg.cpp.o.d"
  "/root/repo/src/solver/pcsi.cpp" "src/CMakeFiles/minipop.dir/solver/pcsi.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/solver/pcsi.cpp.o.d"
  "/root/repo/src/solver/pipelined_cg.cpp" "src/CMakeFiles/minipop.dir/solver/pipelined_cg.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/solver/pipelined_cg.cpp.o.d"
  "/root/repo/src/solver/preconditioner.cpp" "src/CMakeFiles/minipop.dir/solver/preconditioner.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/solver/preconditioner.cpp.o.d"
  "/root/repo/src/solver/solver_factory.cpp" "src/CMakeFiles/minipop.dir/solver/solver_factory.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/solver/solver_factory.cpp.o.d"
  "/root/repo/src/stats/ensemble.cpp" "src/CMakeFiles/minipop.dir/stats/ensemble.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/stats/ensemble.cpp.o.d"
  "/root/repo/src/stats/statistics.cpp" "src/CMakeFiles/minipop.dir/stats/statistics.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/stats/statistics.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/minipop.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/minipop.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/util/log.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/minipop.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/minipop.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
