file(REMOVE_RECURSE
  "libminipop.a"
)
