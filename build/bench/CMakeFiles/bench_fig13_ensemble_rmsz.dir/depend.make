# Empty dependencies file for bench_fig13_ensemble_rmsz.
# This may be replaced when dependencies are built.
