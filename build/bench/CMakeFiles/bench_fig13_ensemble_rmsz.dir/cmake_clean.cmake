file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_ensemble_rmsz.dir/bench_fig13_ensemble_rmsz.cpp.o"
  "CMakeFiles/bench_fig13_ensemble_rmsz.dir/bench_fig13_ensemble_rmsz.cpp.o.d"
  "bench_fig13_ensemble_rmsz"
  "bench_fig13_ensemble_rmsz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ensemble_rmsz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
