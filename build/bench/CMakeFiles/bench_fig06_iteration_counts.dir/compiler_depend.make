# Empty compiler generated dependencies file for bench_fig06_iteration_counts.
# This may be replaced when dependencies are built.
