# Empty dependencies file for bench_fig11_highres_edison.
# This may be replaced when dependencies are built.
