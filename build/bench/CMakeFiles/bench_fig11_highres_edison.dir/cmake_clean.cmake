file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_highres_edison.dir/bench_fig11_highres_edison.cpp.o"
  "CMakeFiles/bench_fig11_highres_edison.dir/bench_fig11_highres_edison.cpp.o.d"
  "bench_fig11_highres_edison"
  "bench_fig11_highres_edison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_highres_edison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
