file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lowres_improvement.dir/bench_table1_lowres_improvement.cpp.o"
  "CMakeFiles/bench_table1_lowres_improvement.dir/bench_table1_lowres_improvement.cpp.o.d"
  "bench_table1_lowres_improvement"
  "bench_table1_lowres_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lowres_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
