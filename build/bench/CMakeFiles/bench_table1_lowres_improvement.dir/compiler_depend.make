# Empty compiler generated dependencies file for bench_table1_lowres_improvement.
# This may be replaced when dependencies are built.
