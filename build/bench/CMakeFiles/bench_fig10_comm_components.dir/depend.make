# Empty dependencies file for bench_fig10_comm_components.
# This may be replaced when dependencies are built.
