# Empty dependencies file for bench_fig01_component_fractions.
# This may be replaced when dependencies are built.
