file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_component_fractions.dir/bench_fig01_component_fractions.cpp.o"
  "CMakeFiles/bench_fig01_component_fractions.dir/bench_fig01_component_fractions.cpp.o.d"
  "bench_fig01_component_fractions"
  "bench_fig01_component_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_component_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
