# Empty dependencies file for bench_ablation_halo_width.
# This may be replaced when dependencies are built.
