file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_component_fractions_pcsi.dir/bench_fig09_component_fractions_pcsi.cpp.o"
  "CMakeFiles/bench_fig09_component_fractions_pcsi.dir/bench_fig09_component_fractions_pcsi.cpp.o.d"
  "bench_fig09_component_fractions_pcsi"
  "bench_fig09_component_fractions_pcsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_component_fractions_pcsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
