# Empty dependencies file for bench_fig09_component_fractions_pcsi.
# This may be replaced when dependencies are built.
