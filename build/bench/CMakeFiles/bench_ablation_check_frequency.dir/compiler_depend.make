# Empty compiler generated dependencies file for bench_ablation_check_frequency.
# This may be replaced when dependencies are built.
