file(REMOVE_RECURSE
  "CMakeFiles/bench_convergence_curves.dir/bench_convergence_curves.cpp.o"
  "CMakeFiles/bench_convergence_curves.dir/bench_convergence_curves.cpp.o.d"
  "bench_convergence_curves"
  "bench_convergence_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
