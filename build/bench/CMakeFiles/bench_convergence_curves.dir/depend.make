# Empty dependencies file for bench_convergence_curves.
# This may be replaced when dependencies are built.
