# Empty dependencies file for bench_fig02_chrongear_comm_breakdown.
# This may be replaced when dependencies are built.
