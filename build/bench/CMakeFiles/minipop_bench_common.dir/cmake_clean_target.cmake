file(REMOVE_RECURSE
  "libminipop_bench_common.a"
)
