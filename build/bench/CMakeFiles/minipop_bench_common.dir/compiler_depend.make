# Empty compiler generated dependencies file for minipop_bench_common.
# This may be replaced when dependencies are built.
