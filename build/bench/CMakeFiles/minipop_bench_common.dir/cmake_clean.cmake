file(REMOVE_RECURSE
  "CMakeFiles/minipop_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/minipop_bench_common.dir/bench_common.cpp.o.d"
  "libminipop_bench_common.a"
  "libminipop_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipop_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
