# Empty compiler generated dependencies file for bench_fig03_lanczos_steps.
# This may be replaced when dependencies are built.
