# Empty compiler generated dependencies file for bench_fig08_highres_yellowstone.
# This may be replaced when dependencies are built.
