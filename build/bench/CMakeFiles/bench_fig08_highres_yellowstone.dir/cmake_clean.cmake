file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_highres_yellowstone.dir/bench_fig08_highres_yellowstone.cpp.o"
  "CMakeFiles/bench_fig08_highres_yellowstone.dir/bench_fig08_highres_yellowstone.cpp.o.d"
  "bench_fig08_highres_yellowstone"
  "bench_fig08_highres_yellowstone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_highres_yellowstone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
