# Empty dependencies file for bench_fig12_tolerance_rmse.
# This may be replaced when dependencies are built.
