file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_tolerance_rmse.dir/bench_fig12_tolerance_rmse.cpp.o"
  "CMakeFiles/bench_fig12_tolerance_rmse.dir/bench_fig12_tolerance_rmse.cpp.o.d"
  "bench_fig12_tolerance_rmse"
  "bench_fig12_tolerance_rmse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_tolerance_rmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
