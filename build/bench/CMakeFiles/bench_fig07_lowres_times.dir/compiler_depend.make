# Empty compiler generated dependencies file for bench_fig07_lowres_times.
# This may be replaced when dependencies are built.
