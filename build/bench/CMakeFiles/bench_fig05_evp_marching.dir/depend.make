# Empty dependencies file for bench_fig05_evp_marching.
# This may be replaced when dependencies are built.
