file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_evp_marching.dir/bench_fig05_evp_marching.cpp.o"
  "CMakeFiles/bench_fig05_evp_marching.dir/bench_fig05_evp_marching.cpp.o.d"
  "bench_fig05_evp_marching"
  "bench_fig05_evp_marching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_evp_marching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
