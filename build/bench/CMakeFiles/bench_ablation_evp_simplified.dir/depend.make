# Empty dependencies file for bench_ablation_evp_simplified.
# This may be replaced when dependencies are built.
