file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_evp_simplified.dir/bench_ablation_evp_simplified.cpp.o"
  "CMakeFiles/bench_ablation_evp_simplified.dir/bench_ablation_evp_simplified.cpp.o.d"
  "bench_ablation_evp_simplified"
  "bench_ablation_evp_simplified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_evp_simplified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
