
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/minipop_tests.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_decomposition.cpp" "tests/CMakeFiles/minipop_tests.dir/test_decomposition.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_decomposition.cpp.o.d"
  "/root/repo/tests/test_evp.cpp" "tests/CMakeFiles/minipop_tests.dir/test_evp.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_evp.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/minipop_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/minipop_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/minipop_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/minipop_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_perf.cpp" "tests/CMakeFiles/minipop_tests.dir/test_perf.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_perf.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/minipop_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/minipop_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/minipop_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_stencil.cpp" "tests/CMakeFiles/minipop_tests.dir/test_stencil.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_stencil.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/minipop_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/minipop_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/minipop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
