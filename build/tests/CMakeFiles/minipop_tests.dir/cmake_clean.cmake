file(REMOVE_RECURSE
  "CMakeFiles/minipop_tests.dir/test_comm.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_comm.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_decomposition.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_decomposition.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_evp.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_evp.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_grid.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_grid.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_linalg.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_linalg.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_model.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_model.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_perf.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_perf.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_properties.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_solver.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_solver.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_stats.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_stats.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_stencil.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_stencil.cpp.o.d"
  "CMakeFiles/minipop_tests.dir/test_util.cpp.o"
  "CMakeFiles/minipop_tests.dir/test_util.cpp.o.d"
  "minipop_tests"
  "minipop_tests.pdb"
  "minipop_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipop_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
