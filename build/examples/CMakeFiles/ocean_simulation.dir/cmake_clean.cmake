file(REMOVE_RECURSE
  "CMakeFiles/ocean_simulation.dir/ocean_simulation.cpp.o"
  "CMakeFiles/ocean_simulation.dir/ocean_simulation.cpp.o.d"
  "ocean_simulation"
  "ocean_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
