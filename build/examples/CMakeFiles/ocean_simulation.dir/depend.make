# Empty dependencies file for ocean_simulation.
# This may be replaced when dependencies are built.
