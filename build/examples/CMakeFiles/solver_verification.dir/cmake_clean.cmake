file(REMOVE_RECURSE
  "CMakeFiles/solver_verification.dir/solver_verification.cpp.o"
  "CMakeFiles/solver_verification.dir/solver_verification.cpp.o.d"
  "solver_verification"
  "solver_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
