# Empty compiler generated dependencies file for solver_verification.
# This may be replaced when dependencies are built.
